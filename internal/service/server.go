package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
)

// Config configures a Server. The zero value is usable: GOMAXPROCS
// workers, a 64-deep queue, default cache sizes, a 10-minute job timeout.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8600").
	Addr string
	// Workers bounds concurrent analyses (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds accepted-but-not-started jobs; a full queue
	// rejects submissions with 503 + Retry-After (default 64).
	QueueDepth int
	// ModelCacheSize / ResultCacheSize bound the engine caches (see
	// EngineOptions).
	ModelCacheSize  int
	ResultCacheSize int
	// ModelsDir resolves stored-model architecture references.
	ModelsDir string
	// JobTimeout caps one job's execution; per-request timeouts are
	// clamped to it (default 10 minutes).
	JobTimeout time.Duration
	// MaxWait caps how long a POST may hold the connection waiting for a
	// synchronous result (default 30s).
	MaxWait time.Duration
	// RetainJobs bounds how many finished jobs stay queryable; the oldest
	// are dropped first (default 1024).
	RetainJobs int
	// MaxAttempts bounds executions per job, including the first (default
	// 3). Transient failures — convergence exhaustion, recovered panics,
	// injected faults — are re-enqueued with capped exponential backoff
	// and jitter until the budget is spent; deterministic failures (bad
	// requests, exceeded exploration budgets) and context errors fail
	// immediately.
	MaxAttempts int
	// RetryBaseDelay / RetryMaxDelay shape the backoff (defaults 100ms /
	// 5s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// RetryAfterSeconds is the hint sent with 503 queue-full rejections
	// (default 1).
	RetryAfterSeconds int
	// DegradedAfter is the consecutive-job-failure count at which
	// /v1/healthz reports "degraded" (default 5).
	DegradedAfter int
	// MaxStates / MaxTransitions cap per-request exploration budgets (see
	// EngineOptions).
	MaxStates      int
	MaxTransitions int
	// ExtraSink, when set, additionally receives every span/counter the
	// server emits (per-request and per-job) — secserved passes the sinks
	// of its -trace/-progress session here.
	ExtraSink obs.Sink
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the service
	// mux. Off by default: profiling endpoints expose heap contents and
	// should only be reachable when deliberately enabled.
	EnablePprof bool
	// FlightSize sizes the always-on black-box ring of recent events
	// (spans, counters, solver attempts). 0 selects obs.DefaultFlightSize;
	// negative disables the recorder. The ring is dumped into a job's
	// manifest when the job panics, trips a fault-injection point, breaches
	// its deadline, or pushes the service into its degraded-health state.
	FlightSize int
	// EnableFlightHTTP serves the live ring at GET /debug/flight. Gated
	// like EnablePprof: the ring exposes recent request activity and should
	// only be reachable when deliberately enabled.
	EnableFlightHTTP bool
	// SlowLog, when set, receives one JSONL SlowRecord per analysis that
	// exceeds the latency threshold or walks the solver fallback chain.
	SlowLog io.Writer
	// SlowThreshold is the slow-analysis latency bar. 0 derives it from the
	// live job-duration histogram (slowAutoMultiplier × p99 once
	// slowAutoMinSamples jobs have run, DefaultSlowThreshold before that).
	SlowThreshold time.Duration
	// Store, when non-nil, is the disk-backed content-addressed result
	// store mounted write-through beneath the engine's in-memory caches
	// (see EngineOptions.Store).
	Store *store.Store
	// Journal, when non-nil, records every accepted job and its terminal
	// state; after a crash, ReplayJournal re-enqueues the jobs that were
	// accepted but never finished.
	Journal *store.Journal
	// Shard, when non-nil, is the consistent-hash peer router: a request
	// whose canonical key is owned by another node is forwarded there
	// (single-flight dedup then happens on the owner), falling back to
	// local compute when the owner is unreachable.
	Shard *shard.Router
	// NodeID names this node. Job IDs are prefixed "<node>:" so any peer
	// can route a job poll to the node that owns it. Defaults to
	// Shard.Self() when sharding is configured.
	NodeID string
	// Replication is the result replication factor: freshly-computed
	// outcomes are pushed asynchronously to the key's first Replication
	// ring nodes (owner included), so one node's loss doesn't cold-start
	// its whole keyspace. < 2 disables replication.
	Replication int
	// Hints is the hinted-handoff queue holding results owed to
	// unreachable replicas, replayed when their breaker closes. New
	// installs a memory-only queue when replication is on and none is
	// given; mount a durable one (store.OpenHints with a path) to survive
	// restarts.
	Hints *store.HintQueue
	// HandoffInterval paces the hint delivery loop (default 1s); the
	// prober's recovery signal also triggers delivery immediately.
	HandoffInterval time.Duration
	// ProbeInterval enables the active peer health prober at the given
	// period. 0 disables probing: breakers are then driven only by live
	// forwarding traffic.
	ProbeInterval time.Duration
	// Tenants enables per-tenant admission control on POST /v1/analyses:
	// token-bucket rates, in-flight quotas and priority-aware load
	// shedding, keyed by the X-Secserved-Tenant header. nil admits
	// everything.
	Tenants *TenantPolicy
	// SLOTarget is the per-tenant availability objective burn rates are
	// computed against (0 selects DefaultSLOTarget, 0.99).
	SLOTarget float64
	// SpanLogSize sizes the recent-span ring exported for cross-node trace
	// assembly. 0 selects the obs default (512); negative disables the ring
	// (cluster endpoints then report no spans from this node).
	SpanLogSize int
	// SpanExport, when set, additionally receives every finished span as one
	// JSON line — the per-node span-export stream for offline assembly.
	SpanExport io.Writer
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8600"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 100 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 5 * time.Second
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 5
	}
	if c.NodeID == "" && c.Shard != nil {
		c.NodeID = c.Shard.Self()
	}
	if c.HandoffInterval <= 0 {
		c.HandoffInterval = time.Second
	}
	if c.Shard != nil && c.Replication > 1 && c.Hints == nil {
		// Replication without a configured hint queue still gets handoff
		// semantics; the hints just don't survive a restart.
		c.Hints, _ = store.OpenHints("", 0)
	}
	return c
}

// Server is the resident analysis service: an Engine behind an HTTP/JSON
// job API with a bounded worker pool. Construction starts the workers;
// Shutdown (or Close) drains them.
type Server struct {
	cfg       Config
	engine    *Engine
	collector *obs.Collector
	tracer    *obs.Tracer
	flight    *obs.Flight
	slow      *slowLog
	spanLog   *obs.SpanLog
	usage     *usageTracker
	mux       *http.ServeMux
	httpSrv   *http.Server

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // retention order
	queue    chan *Job
	retries  map[string]*pendingRetry
	draining bool
	seq      uint64

	wg      sync.WaitGroup
	started time.Time

	accepted       atomic.Int64
	completed      atomic.Int64
	failed         atomic.Int64
	rejected       atomic.Int64
	running        atomic.Int64
	retried        atomic.Int64
	panics         atomic.Int64
	consecFailures atomic.Int64

	// Shard-tier counters (zero when Config.Shard is nil).
	shardOwned       atomic.Int64 // requests this node owned and ran
	shardForwarded   atomic.Int64 // requests proxied to their owner
	shardReceivedFwd atomic.Int64 // forwarded requests received from peers
	shardForwardFail atomic.Int64 // forward attempts that fell back to local compute
	journalErrors    atomic.Int64 // journal appends that failed (persistence degraded)
	journalReplayed  atomic.Int64 // jobs re-enqueued from the journal at startup

	// Fleet-resilience machinery (see replicate.go; zero when Shard is nil).
	admission   *admission
	prober      *shard.Prober
	fleetCtx    context.Context
	fleetCancel context.CancelFunc
	fleetSpan   *obs.Span
	fleetWG     sync.WaitGroup
	handoffKick chan struct{}

	shardFailover      atomic.Int64 // submissions routed past an open-breaker owner
	breakerTransitions atomic.Int64 // peer breaker state changes observed
	replicaPushed      atomic.Int64 // replica writes delivered to peers
	replicaFailed      atomic.Int64 // replica writes that fell back to a hint
	replicaReceived    atomic.Int64 // replica writes accepted from peers
	hintsDelivered     atomic.Int64 // hinted-handoff records replayed successfully
}

// pendingRetry is a job waiting out its backoff. Ownership protocol:
// whoever deletes the retries map entry resolves the job — the timer
// callback (requeue) on the happy path, Shutdown when it cancels pending
// retries during drain.
type pendingRetry struct {
	job   *Job
	timer *time.Timer
	err   error // the failure being retried
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		engine: NewEngine(EngineOptions{
			ModelCacheSize:  cfg.ModelCacheSize,
			ResultCacheSize: cfg.ResultCacheSize,
			ModelsDir:       cfg.ModelsDir,
			MaxStates:       cfg.MaxStates,
			MaxTransitions:  cfg.MaxTransitions,
			Store:           cfg.Store,
		}),
		collector: obs.NewCollector(),
		jobs:      make(map[string]*Job),
		queue:     make(chan *Job, cfg.QueueDepth),
		retries:   make(map[string]*pendingRetry),
		started:   time.Now(),
	}
	if cfg.FlightSize >= 0 {
		s.flight = obs.NewFlight(cfg.FlightSize)
	}
	if cfg.SlowLog != nil {
		s.slow = newSlowLog(cfg.SlowLog)
	}
	if cfg.SpanLogSize >= 0 {
		s.spanLog = obs.NewSpanLog(cfg.NodeID, cfg.SpanLogSize)
		if cfg.SpanExport != nil {
			s.spanLog.Tee(cfg.SpanExport)
		}
	}
	s.usage = newUsageTracker(cfg.SLOTarget)
	sinks := obs.MultiSink{s.collector}
	if s.flight != nil {
		sinks = append(sinks, s.flight)
	}
	if s.spanLog != nil {
		sinks = append(sinks, s.spanLog)
	}
	if cfg.ExtraSink != nil {
		sinks = append(sinks, cfg.ExtraSink)
	}
	s.tracer = obs.NewTracer(sinks, false)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyses", s.handleSubmit)
	s.mux.HandleFunc("PUT /v1/replica/{key}", s.handleReplicaPut)
	s.mux.HandleFunc("GET /v1/analyses/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/analyses/{id}/manifest", s.handleManifest)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/buildinfo", s.handleBuildInfo)
	s.mux.HandleFunc("GET /v1/node/status", s.handleNodeStatus)
	s.mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	s.mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.Handle("GET /v1/metrics/pipeline", obs.MetricsHandler(s.collector, "secserved"))
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if cfg.EnableFlightHTTP {
		// The handler tolerates a disabled (nil) recorder by serving 404.
		s.mux.Handle("GET /debug/flight", s.flight.Handler())
	}
	s.admission = newAdmission(cfg.Tenants)
	s.startFleet()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Engine exposes the server's engine (benchmarks and tests).
func (s *Server) Engine() *Engine { return s.engine }

// Handler returns the instrumented HTTP handler: every request runs under
// an "http.request" span (method, path, status, duration) emitted to the
// server's collector and any extra sink — the service's structured request
// log. A request carrying a traceparent header has its trace context
// adopted: the request span (and the job spans underneath, see runJob)
// parent to the client's span, stitching client and server traces together.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rctx := r.Context()
		if tc, ok := obs.Extract(r.Header); ok {
			rctx = obs.WithRemote(rctx, tc)
		}
		ctx, sp := s.tracer.StartSpan(rctx, "http.request")
		sp.Str("method", r.Method)
		sp.Str("path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(sw, r.WithContext(ctx))
		sp.Int("status", int64(sw.status))
		sp.End()
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ListenAndServe serves the API on cfg.Addr until Shutdown.
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves the API on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully stops the server: submissions are refused with 503,
// queued and running jobs drain to completion, then the HTTP listener (if
// any) closes. When ctx expires before the drain completes, in-flight jobs
// are canceled through their contexts and Shutdown returns ctx.Err() after
// they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// No sends can follow: handleSubmit and requeue check draining
		// under mu before enqueueing.
		close(s.queue)
	}
	httpSrv := s.httpSrv
	s.mu.Unlock()
	// Jobs parked on backoff timers fail now with their original errors
	// rather than stalling the drain for up to a full backoff period.
	s.cancelPendingRetries()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // abort in-flight solves; solvers poll their ctx
		<-drained
	}
	// After the job drain so results finished during it still replicate.
	s.stopFleet()
	s.baseCancel()
	if httpSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if herr := httpSrv.Shutdown(shCtx); herr != nil && err == nil {
			err = herr
		}
	}
	return err
}

// Close is Shutdown with the configured job timeout as drain budget.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one attempt of a job. Transient failures within the
// attempt budget are re-enqueued with backoff instead of finishing the job.
func (s *Server) runJob(job *Job) {
	// Last-resort isolation: the engine recovers its own solve-path
	// panics, but a panic anywhere else on the job path must kill only
	// this job, never the worker goroutine.
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.finishJob(job, nil, "", &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())})
		}
	}()

	attempt := job.beginAttempt()
	timeout := s.cfg.JobTimeout
	if t := time.Duration(job.req.TimeoutSeconds * float64(time.Second)); t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()

	// Per-job tracer: events flow to the job's own collector (the per-job
	// manifest, accumulated across attempts) and to the server-wide sinks.
	// The attempt recorder rides the context so deep solver fallbacks
	// report into the same history.
	sinks := obs.MultiSink{s.collector, job.collector}
	if s.flight != nil {
		sinks = append(sinks, s.flight)
	}
	if s.spanLog != nil {
		sinks = append(sinks, s.spanLog)
	}
	if s.cfg.ExtraSink != nil {
		sinks = append(sinks, s.cfg.ExtraSink)
	}
	tr := obs.NewTracer(sinks, false)
	if job.trace.Valid() {
		ctx = obs.WithRemote(ctx, job.trace)
	}
	ctx, sp := tr.StartSpan(ctx, "service.job")
	sp.Str("job", job.id)
	sp.Int("attempt", int64(attempt))
	job.setSelfTrace(obs.TraceContext{TraceID: sp.TraceID(), SpanID: sp.ID()})
	ctx = obs.WithAttempts(ctx, job.recorder)
	if s.flight != nil {
		ctx = obs.WithFlight(ctx, s.flight)
	}
	if attempt == 1 {
		// Queue wait is submission-to-first-execution; retries wait on their
		// backoff timers, which the attempt history already records.
		obs.ObserveDuration(ctx, "service.queue.wait", time.Since(job.created))
		// The latency bar is captured before this job's own duration can
		// land in the histogram it is derived from (see slowThresholdNow).
		if s.slow != nil {
			job.slowThreshold.Store(int64(s.slowThresholdNow()))
		}
	}

	s.running.Add(1)
	start := time.Now()
	out, cache, err := s.engine.Run(ctx, job.req)
	s.running.Add(-1)
	sp.Str("cache", string(cache))

	rec := obs.Attempt{Stage: "job", Try: attempt, Outcome: obs.AttemptOK, Seconds: time.Since(start).Seconds()}
	if err != nil {
		sp.Str("error", err.Error())
		rec.Outcome = obs.AttemptError
		rec.Error = err.Error()
		var pe *PanicError
		switch {
		case errors.As(err, &pe):
			rec.Outcome = obs.AttemptPanic
			rec.Stack = pe.Stack
			s.panics.Add(1)
		case errors.Is(err, fault.ErrInjected):
			rec.Outcome = obs.AttemptInjected
		}
	}
	// RecordAttempt (rather than the recorder directly) so the attempt also
	// lands in the flight ring the context carries.
	obs.RecordAttempt(ctx, rec)
	sp.End()

	if err != nil && retryable(err) && attempt < s.cfg.MaxAttempts && s.baseCtx.Err() == nil {
		if s.scheduleRetry(job, err, attempt) {
			return
		}
	}
	s.finishJob(job, out, cache, err)
}

// finishJob publishes the terminal state exactly once, assembles the
// manifest from the job's accumulated collector and attempt history, and
// updates the health signals.
func (s *Server) finishJob(job *Job, out *Outcome, cache CacheState, err error) {
	m := job.collector.Manifest("secserved", []string{"job:" + job.id})
	m.Attempts = job.recorder.Attempts()
	if job.trace.Valid() {
		m.TraceID = job.trace.TraceID
	}
	if s.flight != nil && s.flightTriggered(err, m.Attempts) {
		// Dump the black box into the manifest while the failure is fresh:
		// the ring keeps rolling, so by the time an operator fetches the
		// manifest the live /debug/flight view may already have moved on.
		m.Flight = s.flight.Snapshot()
		m.FlightDropped = s.flight.Dropped()
	}
	if !job.finish(out, cache, err, m) {
		return // already terminal: a panic raced a normal finish
	}
	if job.release != nil {
		job.release()
	}
	s.usage.record(job.tenant, job.elapsed().Seconds(), cache, err != nil)
	if err != nil {
		s.failed.Add(1)
		s.consecFailures.Add(1)
	} else {
		s.completed.Add(1)
		s.consecFailures.Store(0)
		s.replicateOutcome(job, out, cache)
	}
	if s.cfg.Journal != nil {
		// Any terminal state — success, failure, cancellation — retires the
		// journal entry; replay is for work that never finished.
		if jerr := s.cfg.Journal.Done(job.id); jerr != nil {
			s.journalErrors.Add(1)
		}
	}
	s.maybeLogSlow(job, m, cache, err)
	s.retire(job)
}

// flightTriggered decides whether this job's manifest should carry a flight
// dump: any recovered panic or injected fault in the attempt history (even
// if a retry then succeeded), a terminal panic/injection/deadline breach,
// or a failure that leaves the service at (or beyond) its degraded-health
// threshold.
func (s *Server) flightTriggered(err error, attempts []obs.Attempt) bool {
	for _, at := range attempts {
		if at.Outcome == obs.AttemptPanic || at.Outcome == obs.AttemptInjected {
			return true
		}
	}
	if err == nil {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) || errors.Is(err, fault.ErrInjected) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	// This failure is about to be counted; +1 anticipates the increment in
	// finishJob.
	return s.consecFailures.Load()+1 >= int64(s.cfg.DegradedAfter)
}

// scheduleRetry arms a backoff timer that re-enqueues the job, reporting
// false when the server is draining (the caller then fails the job). The
// pending retry joins the drain WaitGroup so Shutdown waits for — or
// cancels — it.
func (s *Server) scheduleRetry(job *Job, lastErr error, attempt int) bool {
	delay := retryDelay(s.cfg.RetryBaseDelay, s.cfg.RetryMaxDelay, attempt)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	s.wg.Add(1)
	// Status flips before the timer is armed: a near-zero backoff must not
	// re-begin the attempt and then have this stale write mask it.
	job.requeued()
	pr := &pendingRetry{job: job, err: lastErr}
	pr.timer = time.AfterFunc(delay, func() { s.requeue(job.id) })
	s.retries[job.id] = pr
	s.mu.Unlock()
	s.retried.Add(1)
	return true
}

// requeue is the retry timer callback: it moves the due job back onto the
// queue, or fails it when the server started draining (or the queue
// refilled) during the backoff.
func (s *Server) requeue(id string) {
	defer s.wg.Done()
	s.mu.Lock()
	pr, ok := s.retries[id]
	if !ok {
		s.mu.Unlock()
		return // Shutdown took ownership and resolves the job
	}
	delete(s.retries, id)
	if s.draining {
		s.mu.Unlock()
		s.finishJob(pr.job, nil, "", pr.err)
		return
	}
	select {
	case s.queue <- pr.job:
		s.mu.Unlock()
	default:
		// The queue refilled while the job backed off; failing with the
		// original error beats waiting unboundedly for a slot.
		s.mu.Unlock()
		s.finishJob(pr.job, nil, "", pr.err)
	}
}

// cancelPendingRetries resolves every backoff-parked job during drain:
// each is failed with the error that put it there. Timers whose callback
// already fired resolve through requeue instead (it finds its map entry
// gone and leaves the job to us — entries are deleted here first).
func (s *Server) cancelPendingRetries() {
	s.mu.Lock()
	type cancelled struct {
		pr      *pendingRetry
		stopped bool
	}
	pending := make([]cancelled, 0, len(s.retries))
	for id, pr := range s.retries {
		delete(s.retries, id)
		pending = append(pending, cancelled{pr: pr, stopped: pr.timer.Stop()})
	}
	s.mu.Unlock()
	for _, c := range pending {
		s.finishJob(c.pr.job, nil, "", c.pr.err)
		if c.stopped {
			// The callback will never run; release its drain slot.
			s.wg.Done()
		}
	}
}

// retire records the finished job for retention accounting and drops the
// oldest finished jobs beyond the bound.
func (s *Server) retire(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, job.id)
	for len(s.finished) > s.cfg.RetainJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Submit validates and enqueues a request, returning the job. It is the
// programmatic equivalent of POST /v1/analyses (the HTTP handler wraps
// it); tests and embedded uses drive it directly.
func (s *Server) Submit(req *AnalysisRequest) (*Job, error) {
	return s.SubmitTrace(req, obs.TraceContext{})
}

// SubmitTrace is Submit with a client trace context to stitch the job's
// spans and manifest into (the zero TraceContext means none). The trace is
// bound at enqueue time so the worker cannot race the submission.
func (s *Server) SubmitTrace(req *AnalysisRequest, tc obs.TraceContext) (*Job, error) {
	return s.submitMeta(req, tc, submitMeta{})
}

// submitMeta carries the submission-path context the HTTP handler binds to
// a job: admission identity and release, and the replication key/handoff
// target the routing layer determined.
type submitMeta struct {
	tenant       string
	key          string
	handoffOwner string
	release      func()
}

func (s *Server) submitMeta(req *AnalysisRequest, tc obs.TraceContext, meta submitMeta) (*Job, error) {
	if err := s.engine.Validate(req); err != nil {
		return nil, err
	}
	if meta.key == "" && s.replication() > 1 {
		// The routing layer skips the fingerprint for forwarded-in requests;
		// the owner still needs it to address its replica writes.
		meta.key, _ = s.engine.Fingerprint(req)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	id := fmt.Sprintf("a%06d-%08x", s.seq, time.Now().UnixNano()&0xffffffff)
	if s.cfg.NodeID != "" {
		// Node-prefixed IDs let any peer route a poll to the owning node.
		id = s.cfg.NodeID + ":" + id
	}
	job := newJob(id, req)
	job.tenant = meta.tenant
	job.key = meta.key
	job.handoffOwner = meta.handoffOwner
	job.release = meta.release
	if tc.Valid() {
		job.trace = tc
	}
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[id] = job
	s.mu.Unlock()
	s.accepted.Add(1)
	s.journalSubmit(job)
	return job, nil
}

// journalSubmit durably records an accepted job. Journal trouble degrades
// crash recovery, never the submission: the job is already queued.
func (s *Server) journalSubmit(job *Job) {
	if s.cfg.Journal == nil {
		return
	}
	body, err := json.Marshal(job.req)
	if err == nil {
		err = s.cfg.Journal.Submit(job.id, body)
	}
	if err != nil {
		s.journalErrors.Add(1)
	}
}

// ReplayJournal re-enqueues every job the journal recorded as accepted but
// not finished — the crash-recovery path. Call it once, after New and
// before serving traffic. Replayed jobs keep their original IDs (the
// sequence counter is advanced past them so fresh IDs cannot collide);
// entries whose requests no longer validate (for example a stored model
// that was deleted) are retired instead of replayed. Returns the number of
// jobs re-enqueued.
func (s *Server) ReplayJournal() int {
	j := s.cfg.Journal
	if j == nil {
		return 0
	}
	pending := j.Pending()
	if len(pending) == 0 {
		return 0
	}
	ctx, sp := s.tracer.StartSpan(s.baseCtx, "service.journal.replay")
	defer sp.End()
	replayed := 0
	var maxSeq uint64
	for _, ent := range pending {
		var req AnalysisRequest
		if err := json.Unmarshal(ent.Request, &req); err != nil {
			obs.LogAttrs(ctx, "journal.replay.dropped",
				obs.Attr{Key: "id", Kind: obs.KindString, Str: ent.ID},
				obs.Attr{Key: "error", Kind: obs.KindString, Str: err.Error()})
			_ = j.Done(ent.ID)
			continue
		}
		if err := s.engine.Validate(&req); err != nil {
			obs.LogAttrs(ctx, "journal.replay.dropped",
				obs.Attr{Key: "id", Kind: obs.KindString, Str: ent.ID},
				obs.Attr{Key: "error", Kind: obs.KindString, Str: err.Error()})
			_ = j.Done(ent.ID)
			continue
		}
		if seq, ok := seqOfID(ent.ID); ok && seq > maxSeq {
			maxSeq = seq
		}
		job := newJob(ent.ID, &req)
		if !s.enqueueReplayed(job) {
			break // draining: remaining entries stay pending for next start
		}
		replayed++
	}
	s.mu.Lock()
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	s.mu.Unlock()
	s.accepted.Add(int64(replayed))
	s.journalReplayed.Add(int64(replayed))
	sp.Int("replayed", int64(replayed))
	obs.Count(ctx, "service.journal.replayed", int64(replayed))
	return replayed
}

// seqOfID recovers the sequence number from a job ID of the form
// "[node:]a%06d-%08x".
func seqOfID(id string) (uint64, bool) {
	if i := strings.LastIndexByte(id, ':'); i >= 0 {
		id = id[i+1:]
	}
	if len(id) < 7 || id[0] != 'a' {
		return 0, false
	}
	n, err := strconv.ParseUint(id[1:7], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// enqueueReplayed registers and queues one replayed job, waiting for queue
// space if the backlog exceeds the queue depth (the workers are already
// draining it). Reports false when the server started draining.
func (s *Server) enqueueReplayed(job *Job) bool {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return false
		}
		select {
		case s.queue <- job:
			s.jobs[job.id] = job
			s.mu.Unlock()
			return true
		default:
		}
		s.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
}

// Job returns a queryable job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submission failure modes (both HTTP 503; only the full queue advertises
// a Retry-After, since draining is not a transient condition).
var (
	ErrDraining  = errors.New("service: server is draining")
	ErrQueueFull = errors.New("service: job queue is full")
)

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body is read up front (rather than streamed into the decoder) so a
	// shard forward can relay the exact bytes the client sent.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var req AnalysisRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// Admission control charges the entry node only: a request that arrives
	// pre-routed from a peer was already admitted there. Health and metrics
	// endpoints never pass through here, so they are never shed.
	tenant := tenantOf(r)
	var release func()
	if s.admission != nil && r.Header.Get(shard.ForwardedHeader) == "" {
		rel, retryIn, reason := s.admission.admit(tenant, s.queuePressure())
		if rel == nil {
			s.rejected.Add(1)
			s.usage.recordShed(tenant)
			obs.Count(r.Context(), "service.tenant.shed", 1)
			obs.LogAttrs(r.Context(), "tenant.shed",
				obs.Attr{Key: "tenant", Kind: obs.KindString, Str: tenant},
				obs.Attr{Key: "reason", Kind: obs.KindString, Str: reason})
			s.stampNode(w)
			w.Header().Set("Retry-After", strconv.Itoa(int(retryIn/time.Second)))
			writeErrorKind(w, http.StatusTooManyRequests, "tenant_"+reason,
				fmt.Errorf("tenant %q over budget (%s); retry after %s", tenant, reason, retryIn))
			return
		}
		release = rel
	}
	handled, key, handoffOwner := s.maybeForward(w, r, &req, body)
	if handled {
		if release != nil {
			// The owner answered; the work has left this node.
			release()
		}
		return
	}
	tc, ok := obs.RemoteFrom(r.Context())
	if !ok {
		tc, _ = obs.Extract(r.Header) // direct mux use, no Handler wrapper
	}
	job, err := s.submitMeta(&req, tc, submitMeta{
		tenant:       tenant,
		key:          key,
		handoffOwner: handoffOwner,
		release:      release,
	})
	if err != nil {
		if release != nil {
			release()
		}
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull):
			// Back-pressure, not failure: tell clients when to come back.
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrUnknownKind):
			// A model kind this node cannot resolve (e.g. an attack-tree
			// request landing on an older build): a typed 400 clients can
			// route on, never a generic failure.
			writeErrorKind(w, http.StatusBadRequest, errKindUnknownKind, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	obs.Gauge(r.Context(), "service.queue.depth", float64(len(s.queue)))

	wait := time.Duration(req.WaitSeconds * float64(time.Second))
	if wait > s.cfg.MaxWait {
		wait = s.cfg.MaxWait
	}
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-job.Done():
		case <-t.C:
		case <-r.Context().Done():
		}
	}
	view := job.View()
	view.Node = s.cfg.NodeID
	s.stampNode(w)
	w.Header().Set("Location", "/v1/analyses/"+job.id)
	status := http.StatusOK
	switch {
	case view.Finished == nil:
		status = http.StatusAccepted
	case view.ErrorKind == errKindBudget:
		// The architecture's state space exceeds the exploration budget:
		// the request is well-formed but unprocessable within limits.
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, view)
}

// queuePressure is the admission controller's load signal: queue depth
// over capacity.
func (s *Server) queuePressure() float64 {
	if s.cfg.QueueDepth <= 0 {
		return 0
	}
	return float64(len(s.queue)) / float64(s.cfg.QueueDepth)
}

// stampNode marks a locally-served response with this node's shard name.
func (s *Server) stampNode(w http.ResponseWriter) {
	if s.cfg.NodeID != "" {
		w.Header().Set(shard.ServedByHeader, s.cfg.NodeID)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		if s.proxyJobGet(w, r, id) {
			return
		}
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	view := job.View()
	view.Node = s.cfg.NodeID
	s.stampNode(w)
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		if s.proxyJobGet(w, r, id) {
			return
		}
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	m := job.Manifest()
	if m == nil {
		writeError(w, http.StatusConflict, errors.New("job has not finished"))
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// Health is the /v1/healthz body. Status is "ok", "degraded" (persistent
// job failures or near-saturated queue; still HTTP 200 so load balancers
// don't evict a recovering instance) or "draining" (HTTP 503).
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	JobsRunning   int64   `json:"jobs_running"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	// QueuePressure is QueueDepth/QueueCapacity; ≥ 0.9 degrades.
	QueuePressure float64 `json:"queue_pressure"`
	// ConsecutiveFailures counts job failures since the last success;
	// reaching the configured DegradedAfter threshold degrades.
	ConsecutiveFailures int64 `json:"consecutive_failures"`
	// PanicsRecovered counts solve-path panics converted to job failures
	// over the server's lifetime.
	PanicsRecovered int64 `json:"panics_recovered"`
	// RetriesPending counts jobs currently waiting out a backoff.
	RetriesPending int `json:"retries_pending,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.healthSnapshot()
	status := http.StatusOK
	if h.Status == "draining" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Metrics is the /v1/metrics body: worker-pool and job counters plus the
// engine's cache statistics. The full per-phase pipeline aggregate is
// served separately at /v1/metrics/pipeline (obs.MetricsHandler).
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	JobsAccepted  int64   `json:"jobs_accepted"`
	JobsCompleted int64   `json:"jobs_completed"`
	JobsFailed    int64   `json:"jobs_failed"`
	JobsRejected  int64   `json:"jobs_rejected"`
	JobsRunning   int64   `json:"jobs_running"`
	// JobsRetried counts transient-failure re-enqueues; PanicsRecovered
	// counts solve-path panics converted to job failures.
	JobsRetried     int64       `json:"jobs_retried"`
	PanicsRecovered int64       `json:"panics_recovered"`
	RetriesPending  int         `json:"retries_pending"`
	Engine          EngineStats `json:"engine"`
	// Shard reports the peer-routing tier (nil when sharding is off).
	Shard *ShardMetrics `json:"shard,omitempty"`
	// Journal reports the crash-recovery journal (nil when none is mounted).
	Journal *JournalMetrics `json:"journal,omitempty"`
	// Replication reports the result-replication and hinted-handoff tier
	// (nil when replication is off).
	Replication *ReplicationMetrics `json:"replication,omitempty"`
	// Tenants reports per-tenant admission counters (nil when admission
	// control is off).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// ShardMetrics is the /v1/metrics view of the consistent-hash peer tier.
type ShardMetrics struct {
	Node  string   `json:"node"`
	Nodes []string `json:"nodes"`
	// Owned counts submissions this node owned and ran; Forwarded counts
	// submissions proxied to their owner; ReceivedForwarded counts
	// submissions that arrived pre-routed from a peer; ForwardFailed counts
	// forwards that fell back to local compute.
	Owned             int64 `json:"owned"`
	Forwarded         int64 `json:"forwarded"`
	ReceivedForwarded int64 `json:"received_forwarded"`
	ForwardFailed     int64 `json:"forward_failed"`
	// Failovers counts submissions routed past an open-breaker owner to
	// the next healthy ring successor.
	Failovers int64 `json:"failovers"`
	// Breakers maps peer → circuit state ("closed", "half-open", "open");
	// BreakerTransitions counts state changes observed.
	Breakers           map[string]string `json:"breakers,omitempty"`
	BreakerTransitions int64             `json:"breaker_transitions"`
	// Probes / ProbeFailures count active health checks (zero when the
	// prober is off).
	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probe_failures"`
}

// ReplicationMetrics is the /v1/metrics view of result replication and
// hinted handoff.
type ReplicationMetrics struct {
	// Factor is the effective replication factor.
	Factor int `json:"factor"`
	// Pushed / Failed count replica writes delivered to peers and writes
	// that fell back to a hint; Received counts replica writes accepted
	// from peers.
	Pushed   int64 `json:"pushed"`
	Failed   int64 `json:"failed"`
	Received int64 `json:"received"`
	// HandoffPending is the current hint backlog; HandoffQueued /
	// HandoffDelivered / HandoffDropped are lifetime hint-queue counters.
	HandoffPending   int   `json:"handoff_pending"`
	HandoffQueued    int64 `json:"handoff_queued"`
	HandoffDelivered int64 `json:"handoff_delivered"`
	HandoffDropped   int64 `json:"handoff_dropped"`
}

// JournalMetrics is the /v1/metrics view of the job journal.
type JournalMetrics struct {
	// PendingAtOpen is the replay backlog found when the journal opened;
	// Replayed is how many of those were re-enqueued.
	PendingAtOpen int   `json:"pending_at_open"`
	Replayed      int64 `json:"replayed"`
	Appends       int64 `json:"appends"`
	// Errors counts failed journal appends (persistence degraded; requests
	// unaffected).
	Errors int64 `json:"errors"`
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	pending := len(s.retries)
	s.mu.Unlock()
	m := Metrics{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Workers:         s.cfg.Workers,
		QueueDepth:      len(s.queue),
		QueueCapacity:   s.cfg.QueueDepth,
		JobsAccepted:    s.accepted.Load(),
		JobsCompleted:   s.completed.Load(),
		JobsFailed:      s.failed.Load(),
		JobsRejected:    s.rejected.Load(),
		JobsRunning:     s.running.Load(),
		JobsRetried:     s.retried.Load(),
		PanicsRecovered: s.panics.Load(),
		RetriesPending:  pending,
		Engine:          s.engine.Stats(),
	}
	if s.cfg.Shard != nil {
		m.Shard = &ShardMetrics{
			Node:               s.cfg.NodeID,
			Nodes:              s.cfg.Shard.Nodes(),
			Owned:              s.shardOwned.Load(),
			Forwarded:          s.shardForwarded.Load(),
			ReceivedForwarded:  s.shardReceivedFwd.Load(),
			ForwardFailed:      s.shardForwardFail.Load(),
			Failovers:          s.shardFailover.Load(),
			BreakerTransitions: s.breakerTransitions.Load(),
		}
		if s.cfg.Shard.Breakers != nil {
			states := s.cfg.Shard.Breakers.States()
			m.Shard.Breakers = make(map[string]string, len(states))
			for node, st := range states {
				m.Shard.Breakers[node] = st.String()
			}
		}
		m.Shard.Probes, m.Shard.ProbeFailures = s.prober.Stats()
		if f := s.replication(); f > 1 {
			hs := s.cfg.Hints.Stats()
			m.Replication = &ReplicationMetrics{
				Factor:           f,
				Pushed:           s.replicaPushed.Load(),
				Failed:           s.replicaFailed.Load(),
				Received:         s.replicaReceived.Load(),
				HandoffPending:   hs.Pending,
				HandoffQueued:    hs.Queued,
				HandoffDelivered: hs.Delivered,
				HandoffDropped:   hs.Dropped,
			}
		}
	}
	m.Tenants = s.admission.stats()
	if s.cfg.Journal != nil {
		js := s.cfg.Journal.Stats()
		m.Journal = &JournalMetrics{
			PendingAtOpen: js.PendingAtOpen,
			Replayed:      s.journalReplayed.Load(),
			Appends:       js.Appends,
			Errors:        s.journalErrors.Load(),
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// Kind is a machine-readable classification for errors a client routes
	// on (e.g. "owner_unavailable" for polls whose owning node is down, or
	// "tenant_rate" for admission rejections).
	Kind string `json:"kind,omitempty"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeErrorKind(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Kind: kind})
}
