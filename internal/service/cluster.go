package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// clusterScrapeTimeout bounds one peer's /v1/node/status scrape during
// federation fan-out; a node slower than this is reported unreachable
// rather than stalling the whole cluster view.
const clusterScrapeTimeout = 3 * time.Second

// clusterTraceCap bounds how many assembled traces /v1/cluster/metrics
// returns (slowest first).
const clusterTraceCap = 20

// NodeStatus is the GET /v1/node/status body: one node's full contribution
// to the cluster observability plane, designed to be merged by any peer.
type NodeStatus struct {
	Node   string    `json:"node,omitempty"`
	Status string    `json:"status"`
	Build  BuildInfo `json:"build"`

	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	QueuePressure float64 `json:"queue_pressure"`
	JobsRunning   int64   `json:"jobs_running"`
	JobsAccepted  int64   `json:"jobs_accepted"`
	JobsCompleted int64   `json:"jobs_completed"`
	JobsFailed    int64   `json:"jobs_failed"`

	// RingOwnership is the fraction of the hash space this node owns (0 when
	// sharding is off); Breakers maps peer → circuit state as seen from this
	// node.
	RingOwnership float64           `json:"ring_ownership,omitempty"`
	Breakers      map[string]string `json:"breakers,omitempty"`

	// HintDepths maps peer → undelivered hinted-handoff records held here on
	// its behalf; ReplicationLagSeconds is the age of the oldest such hint —
	// how far behind the worst replica is.
	HintDepths            map[string]int `json:"hint_depths,omitempty"`
	HintsPending          int            `json:"hints_pending"`
	ReplicationLagSeconds float64        `json:"replication_lag_seconds"`

	// Journal and Replication mirror the /v1/metrics sections (nil when the
	// corresponding tier is off); Engine carries the cache statistics.
	Journal     *JournalMetrics     `json:"journal,omitempty"`
	Replication *ReplicationMetrics `json:"replication,omitempty"`
	Engine      EngineStats         `json:"engine"`

	// Tenants is the per-tenant usage/SLO accounting recorded on this node.
	Tenants map[string]TenantUsage `json:"tenants,omitempty"`

	// Histograms carries every latency histogram as a mergeable wire,
	// stamped with this node's name.
	Histograms map[string]obs.HistogramWire `json:"histograms,omitempty"`

	// Spans is the node's recent-span ring (for cross-node trace assembly).
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// nodeStatus assembles this node's status document.
func (s *Server) nodeStatus() NodeStatus {
	h := s.healthSnapshot()
	m := s.Metrics()
	ns := NodeStatus{
		Node:          s.cfg.NodeID,
		Status:        h.Status,
		Build:         s.buildInfo(),
		QueueDepth:    h.QueueDepth,
		QueueCapacity: h.QueueCapacity,
		QueuePressure: h.QueuePressure,
		JobsRunning:   h.JobsRunning,
		JobsAccepted:  m.JobsAccepted,
		JobsCompleted: m.JobsCompleted,
		JobsFailed:    m.JobsFailed,
		Journal:       m.Journal,
		Replication:   m.Replication,
		Engine:        m.Engine,
		Tenants:       s.usage.snapshot(),
	}
	if rt := s.cfg.Shard; rt != nil {
		if own := rt.Ring().Ownership(); own != nil {
			ns.RingOwnership = own[rt.Self()]
		}
		if rt.Breakers != nil {
			states := rt.Breakers.States()
			ns.Breakers = make(map[string]string, len(states))
			for node, st := range states {
				ns.Breakers[node] = st.String()
			}
		}
	}
	if q := s.cfg.Hints; q != nil {
		ns.HintDepths = q.Depths()
		ns.HintsPending = q.Stats().Pending
		if oldest := q.OldestUnixNano(); oldest > 0 {
			ns.ReplicationLagSeconds = time.Since(time.Unix(0, oldest)).Seconds()
		}
	}
	node := s.cfg.NodeID
	hists := s.collector.Histograms()
	ns.Histograms = make(map[string]obs.HistogramWire, len(hists))
	for name, snap := range hists {
		ns.Histograms[name] = snap.Wire(node)
	}
	if s.spanLog != nil {
		ns.Spans = s.spanLog.Records()
	}
	return ns
}

// healthSnapshot computes the same health document /v1/healthz serves.
func (s *Server) healthSnapshot() Health {
	s.mu.Lock()
	draining := s.draining
	pending := len(s.retries)
	s.mu.Unlock()
	h := Health{
		Status:              "ok",
		UptimeSeconds:       time.Since(s.started).Seconds(),
		JobsRunning:         s.running.Load(),
		QueueDepth:          len(s.queue),
		QueueCapacity:       s.cfg.QueueDepth,
		ConsecutiveFailures: s.consecFailures.Load(),
		PanicsRecovered:     s.panics.Load(),
		RetriesPending:      pending,
	}
	if s.cfg.QueueDepth > 0 {
		h.QueuePressure = float64(h.QueueDepth) / float64(s.cfg.QueueDepth)
	}
	switch {
	case draining:
		h.Status = "draining"
	case h.ConsecutiveFailures >= int64(s.cfg.DegradedAfter) || h.QueuePressure >= 0.9:
		h.Status = "degraded"
	}
	return h
}

func (s *Server) handleNodeStatus(w http.ResponseWriter, r *http.Request) {
	s.stampNode(w)
	writeJSON(w, http.StatusOK, s.nodeStatus())
}

// UnreachableNode records a peer the federation fan-out could not scrape.
type UnreachableNode struct {
	Node   string `json:"node"`
	Reason string `json:"reason"`
}

// gatherCluster fans out to every ring peer's /v1/node/status (self is read
// in-process), respecting open breakers — a peer the ring already considers
// down is reported unreachable without burning a scrape on it. Scrapes run
// in parallel; results come back in node order.
func (s *Server) gatherCluster() ([]NodeStatus, []UnreachableNode) {
	rt := s.cfg.Shard
	if rt == nil {
		return []NodeStatus{s.nodeStatus()}, nil
	}
	nodes := rt.Nodes()
	statuses := make([]*NodeStatus, len(nodes))
	failures := make([]*UnreachableNode, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		if node == rt.Self() {
			ns := s.nodeStatus()
			statuses[i] = &ns
			continue
		}
		if rt.Breakers != nil && rt.Breakers.State(node) == shard.BreakerOpen {
			failures[i] = &UnreachableNode{Node: node, Reason: "breaker_open"}
			continue
		}
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			ns, err := s.scrapeNode(node)
			if err != nil {
				failures[i] = &UnreachableNode{Node: node, Reason: err.Error()}
				return
			}
			if ns.Node == "" {
				ns.Node = node
			}
			statuses[i] = ns
		}(i, node)
	}
	wg.Wait()
	var out []NodeStatus
	var unreachable []UnreachableNode
	for i := range nodes {
		if statuses[i] != nil {
			out = append(out, *statuses[i])
		}
		if failures[i] != nil {
			unreachable = append(unreachable, *failures[i])
		}
	}
	return out, unreachable
}

// scrapeNode fetches one peer's status document.
func (s *Server) scrapeNode(node string) (*NodeStatus, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, clusterScrapeTimeout)
	defer cancel()
	resp, err := s.cfg.Shard.Forward(ctx, node, http.MethodGet, "/v1/node/status", nil, "")
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s returned %s", node, resp.Status)
	}
	var ns NodeStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 32<<20)).Decode(&ns); err != nil {
		return nil, fmt.Errorf("decoding %s status: %w", node, err)
	}
	return &ns, nil
}

// ClusterStatus is the GET /v1/cluster/status body: every reachable node's
// full status document plus the peers the fan-out could not reach.
type ClusterStatus struct {
	Self        string            `json:"self,omitempty"`
	Nodes       []NodeStatus      `json:"nodes"`
	Unreachable []UnreachableNode `json:"unreachable,omitempty"`
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	nodes, unreachable := s.gatherCluster()
	s.stampNode(w)
	writeJSON(w, http.StatusOK, ClusterStatus{
		Self:        s.cfg.NodeID,
		Nodes:       nodes,
		Unreachable: unreachable,
	})
}

// HistQuantiles are the convenience percentiles of one merged histogram.
type HistQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Nodes is the merged wire's provenance.
	Nodes []string `json:"nodes,omitempty"`
}

// ClusterMetrics is the GET /v1/cluster/metrics body: the fleet rolled into
// one document — bucket-accurate merged histograms, fleet-wide tenant SLO
// accounting, and the slowest recent distributed traces.
type ClusterMetrics struct {
	Self        string            `json:"self,omitempty"`
	Nodes       []string          `json:"nodes"`
	Unreachable []UnreachableNode `json:"unreachable,omitempty"`

	JobsAccepted  int64 `json:"jobs_accepted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsRunning   int64 `json:"jobs_running"`
	HintsPending  int   `json:"hints_pending"`

	// Histograms maps metric name → bucket-wise merged wire; Quantiles
	// pre-computes p50/p90/p99 from each merged wire.
	Histograms map[string]obs.HistogramWire `json:"histograms,omitempty"`
	Quantiles  map[string]HistQuantiles     `json:"quantiles,omitempty"`

	// Tenants is the fleet-wide merged per-tenant usage and burn rates.
	Tenants map[string]TenantUsage `json:"tenants,omitempty"`

	// Traces are the slowest recently-assembled traces (capped);
	// MultiNodeTraces counts assembled traces spanning more than one node.
	Traces          []obs.AssembledTrace `json:"traces,omitempty"`
	MultiNodeTraces int                  `json:"multi_node_traces"`
}

// mergeCluster rolls per-node status documents into the fleet view.
func mergeCluster(self string, nodes []NodeStatus, unreachable []UnreachableNode) ClusterMetrics {
	cm := ClusterMetrics{
		Self:        self,
		Unreachable: unreachable,
		Histograms:  make(map[string]obs.HistogramWire),
		Quantiles:   make(map[string]HistQuantiles),
	}
	wires := make(map[string][]obs.HistogramWire)
	var tenantMaps []map[string]TenantUsage
	var spans []obs.SpanRecord
	for _, ns := range nodes {
		cm.Nodes = append(cm.Nodes, ns.Node)
		cm.JobsAccepted += ns.JobsAccepted
		cm.JobsCompleted += ns.JobsCompleted
		cm.JobsFailed += ns.JobsFailed
		cm.JobsRunning += ns.JobsRunning
		cm.HintsPending += ns.HintsPending
		for name, w := range ns.Histograms {
			wires[name] = append(wires[name], w)
		}
		if len(ns.Tenants) > 0 {
			tenantMaps = append(tenantMaps, ns.Tenants)
		}
		spans = append(spans, ns.Spans...)
	}
	sort.Strings(cm.Nodes)
	for name, ws := range wires {
		merged, err := obs.MergeWires(ws...)
		if err != nil {
			// A node on a foreign bucket layout (mid-upgrade mixed fleet)
			// cannot merge; surface the name with an empty wire rather than
			// dropping the whole document.
			cm.Histograms[name] = obs.HistogramWire{}
			continue
		}
		cm.Histograms[name] = merged
		if snap, err := merged.Snapshot(); err == nil && snap.Count > 0 {
			cm.Quantiles[name] = HistQuantiles{
				Count: snap.Count,
				P50:   snap.P50(),
				P90:   snap.P90(),
				P99:   snap.P99(),
				Nodes: merged.Provenance(),
			}
		}
	}
	cm.Tenants = MergeTenantUsage(tenantMaps...)
	traces := obs.AssembleTraces(spans)
	for _, t := range traces {
		if t.MultiNode() {
			cm.MultiNodeTraces++
		}
	}
	if len(traces) > clusterTraceCap {
		traces = traces[:clusterTraceCap]
	}
	cm.Traces = traces
	return cm
}

func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	nodes, unreachable := s.gatherCluster()
	s.stampNode(w)
	writeJSON(w, http.StatusOK, mergeCluster(s.cfg.NodeID, nodes, unreachable))
}
