package service

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo is the GET /v1/buildinfo body: enough to answer "what exactly is
// running on that node" from the dashboard without shelling into the host.
type BuildInfo struct {
	Node          string  `json:"node,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	// Module and ModuleVersion identify the main module;
	// Revision/RevisionTime/Dirty carry the VCS stamp when the binary was
	// built from a checkout (absent under plain `go build` of a dirty tree
	// without VCS metadata).
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	Revision      string `json:"revision,omitempty"`
	RevisionTime  string `json:"revision_time,omitempty"`
	Dirty         bool   `json:"dirty,omitempty"`
}

// buildInfo assembles the node's build identity.
func (s *Server) buildInfo() BuildInfo {
	b := BuildInfo{
		Node:          s.cfg.NodeID,
		UptimeSeconds: time.Since(s.started).Seconds(),
		GoVersion:     runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		b.Module = bi.Main.Path
		b.ModuleVersion = bi.Main.Version
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				b.Revision = kv.Value
			case "vcs.time":
				b.RevisionTime = kv.Value
			case "vcs.modified":
				b.Dirty = kv.Value == "true"
			}
		}
	}
	return b
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	s.stampNode(w)
	writeJSON(w, http.StatusOK, s.buildInfo())
}
