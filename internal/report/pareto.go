package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// FrontPoint is one non-dominated design of a Pareto front: a label naming
// the configuration and one value per objective (all minimised).
type FrontPoint struct {
	Label  string
	Values []float64
}

// Front is the Pareto-front section of an exploration report: named
// objectives and the non-dominated points, in the deterministic order the
// search produced (sorted by objective vector, then label).
type Front struct {
	Objectives []string
	Points     []FrontPoint
}

// Objective formats an objective value compactly and stably (the front
// renderers' cell format).
func Objective(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

// Table renders the front as a column-aligned table with one row per point.
func (f *Front) Table() *Table {
	tbl := NewTable(append([]string{"point"}, f.Objectives...)...)
	for _, p := range f.Points {
		cells := make([]string, 0, 1+len(p.Values))
		cells = append(cells, p.Label)
		for _, v := range p.Values {
			cells = append(cells, Objective(v))
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// WriteJSON renders the front as a stable JSON document: the objective
// names in order, then one object per point with its values keyed by
// objective name (in objective order, so the output is byte-stable).
func (f *Front) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"objectives\": ")
	names, err := json.Marshal(f.Objectives)
	if err != nil {
		return err
	}
	b.Write(names)
	b.WriteString(",\n  \"points\": [")
	for i, p := range f.Points {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n    {\"label\": ")
		lb, err := json.Marshal(p.Label)
		if err != nil {
			return err
		}
		b.Write(lb)
		b.WriteString(", \"values\": {")
		for j, name := range f.Objectives {
			if j > 0 {
				b.WriteString(", ")
			}
			nb, err := json.Marshal(name)
			if err != nil {
				return err
			}
			b.Write(nb)
			b.WriteString(": ")
			v := 0.0
			if j < len(p.Values) {
				v = p.Values[j]
			}
			vb, err := json.Marshal(v)
			if err != nil {
				return err
			}
			b.Write(vb)
		}
		b.WriteString("}}")
	}
	if len(f.Points) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("]\n}\n")
	_, err = io.WriteString(w, b.String())
	return err
}
