package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
	// Column alignment: "value" column starts at the same offset in every
	// row.
	off := strings.Index(lines[0], "value")
	if got := strings.Index(lines[2], "1"); got != off {
		t.Fatalf("misaligned: %q (want col %d, got %d)", lines[2], off, got)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("x")
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("row lost")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("name", "note")
	tb.AddRow("a,b", `say "hi"`)
	tb.AddRow("plain", "ok")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\nplain,ok\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestPercent(t *testing.T) {
	cases := map[float64]string{
		0.122:    "12.2%",
		0.00668:  "0.668%",
		0.0697:   "6.97%",
		0.000001: "1.00e-04%",
	}
	for in, want := range cases {
		if got := Percent(in); got != want {
			t.Fatalf("Percent(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRate(t *testing.T) {
	if got := Rate(52); got != "52" {
		t.Fatalf("Rate(52) = %q", got)
	}
	if got := Rate(1.85); got != "1.85" {
		t.Fatalf("Rate(1.85) = %q", got)
	}
}
