// Package report renders analysis results as aligned text tables, CSV and
// stable JSON, the output format of the command-line tools and the
// experiment harness (Figure 5 grids, Figure 6 curves, Table 2
// assessments), plus the Pareto-front section of design-space exploration
// reports.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table with aligned columns. It implements
// io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		n, err := io.WriteString(w, b.String())
		total += int64(n)
		return err
	}
	if err := writeRow(t.header); err != nil {
		return total, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return total, err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas, quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the table as a JSON array with one object per row,
// keyed by column header in declaration order (hand-encoded so the output
// is byte-stable for golden comparisons and diff-friendly across runs).
func (t *Table) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("[")
	for i, row := range t.rows {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  {")
		for j, h := range t.header {
			if j > 0 {
				b.WriteString(", ")
			}
			hb, err := json.Marshal(h)
			if err != nil {
				return err
			}
			b.Write(hb)
			b.WriteString(": ")
			vb, err := json.Marshal(row[j])
			if err != nil {
				return err
			}
			b.Write(vb)
		}
		b.WriteString("}")
	}
	if len(t.rows) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Percent formats a fraction as a percentage with adaptive precision, the
// style of the paper's Figure 5 annotations (12.2%, 0.668%).
func Percent(fraction float64) string {
	p := 100 * fraction
	switch {
	case p == 0:
		return "0%"
	case p >= 10:
		return fmt.Sprintf("%.1f%%", p)
	case p >= 0.01:
		return fmt.Sprintf("%.3g%%", p)
	default:
		return fmt.Sprintf("%.2e%%", p)
	}
}

// Rate formats a per-year rate compactly.
func Rate(r float64) string {
	if r == float64(int64(r)) && r < 1e6 {
		return fmt.Sprintf("%d", int64(r))
	}
	return fmt.Sprintf("%.4g", r)
}
