package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// sampleTable is a Figure-5-shaped grid used by the table golden tests.
func sampleTable() *Table {
	tbl := NewTable("architecture", "category", "protection", "exploitable time")
	tbl.AddRow("Architecture 1", "confidentiality", "unencrypted", Percent(0.122))
	tbl.AddRow("Architecture 1", "confidentiality", "AES128", Percent(0.0697))
	tbl.AddRow("Architecture 3", "availability", "unencrypted", Percent(0.00668))
	tbl.AddRow("Architecture 3, \"guarded\"", "integrity", "CMAC128", Percent(0.00388))
	return tbl
}

// sampleFront is a small Pareto front: the paper's three protection
// variants of Architecture 1 over (exploitable time per category, cost).
func sampleFront() *Front {
	return &Front{
		Objectives: []string{"confidentiality", "integrity", "availability", "cost"},
		Points: []FrontPoint{
			{Label: "m=unencrypted", Values: []float64{0.122, 0.122, 0.122, 0}},
			{Label: "m=CMAC128", Values: []float64{0.122, 0.0697, 0.122, 1}},
			{Label: "m=AES128", Values: []float64{0.0697, 0.0697, 0.122, 2.5}},
		},
	}
}

func TestGoldenTableText(t *testing.T) {
	golden(t, "table", sampleTable().String())
}

func TestGoldenTableCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "table_csv", b.String())
}

func TestGoldenTableJSON(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "table_json", b.String())
}

func TestGoldenFrontTable(t *testing.T) {
	golden(t, "front", sampleFront().Table().String())
}

func TestGoldenFrontJSON(t *testing.T) {
	var b strings.Builder
	if err := sampleFront().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "front_json", b.String())
}

// TestGoldenEmpty pins the renderers' behaviour on empty inputs (no rows,
// no points): still valid documents, no trailing garbage.
func TestGoldenEmpty(t *testing.T) {
	empty := NewTable("a", "b")
	var b strings.Builder
	if err := empty.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "[]\n" {
		t.Fatalf("empty table JSON = %q", b.String())
	}
	f := &Front{Objectives: []string{"cost"}}
	b.Reset()
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"points": []`) {
		t.Fatalf("empty front JSON = %q", b.String())
	}
}
