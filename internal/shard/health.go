package shard

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// Prober actively checks peer health so dead nodes are discovered (and
// recovered nodes welcomed back) without a live request paying the
// transport timeout. Each cycle it probes every peer whose breaker admits
// a request — for an open breaker that is exactly the half-open trial, so
// the prober drives the breaker lifecycle even when no traffic flows:
// a dead peer's breaker stays open between backoff-paced probes, and the
// first successful probe after recovery closes it.
type Prober struct {
	router *Router
	// Interval paces probe cycles (default 2s).
	Interval time.Duration
	// Timeout bounds one probe (default 1s).
	Timeout time.Duration
	// Path is the health endpoint (default "/v1/healthz").
	Path string
	// OnHealthy, when set, is invoked after every successful probe of a
	// node — the hook hinted-handoff delivery keys on. Set before Start.
	OnHealthy func(node string)

	mu      sync.Mutex
	cancel  context.CancelFunc
	done    chan struct{}
	probes  int64
	failed  int64
	started bool
}

// NewProber builds a prober for the router's peer set. interval ≤ 0 selects
// the 2s default.
func NewProber(r *Router, interval time.Duration) *Prober {
	return &Prober{router: r, Interval: interval}
}

// Start launches the probe loop. It is a no-op on a nil prober, a nil
// router, or a second Start.
func (p *Prober) Start() {
	if p == nil || p.router == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.done = make(chan struct{})
	go p.loop(ctx)
}

// Stop terminates the probe loop and waits for it to exit.
func (p *Prober) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.started = false
	p.cancel = nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

func (p *Prober) loop(ctx context.Context) {
	defer close(p.done)
	interval := p.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		p.cycle(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// cycle probes every peer (except self) whose breaker currently admits a
// request.
func (p *Prober) cycle(ctx context.Context) {
	for _, node := range p.router.Nodes() {
		if node == p.router.Self() || ctx.Err() != nil {
			continue
		}
		if !p.router.Breakers.Allow(node) {
			continue // open breaker inside its backoff window: not yet
		}
		if p.probe(ctx, node) {
			p.router.Breakers.OK(node)
			if p.OnHealthy != nil {
				p.OnHealthy(node)
			}
		} else {
			p.router.Breakers.Fail(node)
		}
	}
}

// probe issues one health check, reporting whether the node answered 200.
// A node that answers anything else (degraded is still 200; draining is
// 503) is treated as unable to take forwarded work.
func (p *Prober) probe(ctx context.Context, node string) bool {
	p.mu.Lock()
	p.probes++
	p.mu.Unlock()
	base, ok := p.router.URL(node)
	if !ok {
		return false
	}
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	path := p.Path
	if path == "" {
		path = "/v1/healthz"
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+path, nil)
	if err != nil {
		return false
	}
	resp, err := p.router.httpClient().Do(req)
	if err != nil {
		p.mu.Lock()
		p.failed++
		p.mu.Unlock()
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.mu.Lock()
		p.failed++
		p.mu.Unlock()
		return false
	}
	return true
}

// Stats reports lifetime probe counts (total, failed).
func (p *Prober) Stats() (probes, failed int64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.probes, p.failed
}
