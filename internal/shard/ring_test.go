package shard

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2"}, 0) // order-insensitive
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %q: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestOwnershipIsSpread(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	counts := make(map[string]int)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys: %v", len(counts), counts)
	}
	for node, c := range counts {
		frac := float64(c) / n
		// With 128 vnodes the imbalance stays well inside [0.2, 0.5].
		if frac < 0.2 || frac > 0.5 {
			t.Fatalf("node %s owns %.1f%% of keys: %v", node, 100*frac, counts)
		}
	}
}

func TestMembershipChangeIsStable(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	after := NewRing([]string{"n1", "n2", "n3"}, 0) // n4 left

	const n = 10000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := before.Owner(key), after.Owner(key)
		if was != "n4" && was != is {
			t.Fatalf("key %q moved from surviving node %s to %s", key, was, is)
		}
		if was != is {
			moved++
		}
	}
	// Only n4's ~1/4 share may move.
	if frac := float64(moved) / n; frac > 0.35 {
		t.Fatalf("%.1f%% of keys moved after one node left", 100*frac)
	}
}

func TestRingEdgeCases(t *testing.T) {
	var nilRing *Ring
	if nilRing.Owner("k") != "" || nilRing.Size() != 0 || nilRing.Nodes() != nil {
		t.Fatal("nil ring not inert")
	}
	empty := NewRing(nil, 0)
	if empty.Owner("k") != "" {
		t.Fatal("empty ring owns a key")
	}
	single := NewRing([]string{"only"}, 4)
	for i := 0; i < 100; i++ {
		if got := single.Owner(fmt.Sprintf("k%d", i)); got != "only" {
			t.Fatalf("single-node ring owner = %q", got)
		}
	}
	dedup := NewRing([]string{"a", "a", "b", ""}, 4)
	if dedup.Size() != 2 {
		t.Fatalf("dedup size = %d", dedup.Size())
	}
}

func TestRingOwnershipSumsToOne(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	own := r.Ownership()
	if len(own) != 3 {
		t.Fatalf("ownership nodes = %d", len(own))
	}
	sum := 0.0
	for n, f := range own {
		if f <= 0 || f >= 1 {
			t.Fatalf("node %s owns %g, want (0,1)", n, f)
		}
		// 128 vnodes keeps the imbalance modest; anything wildly off means
		// the arc attribution is wrong, not just unlucky hashing.
		if f < 0.05 || f > 0.80 {
			t.Fatalf("node %s owns %g, implausible for 3 nodes", n, f)
		}
		sum += f
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("ownership sums to %g", sum)
	}
	if (&Ring{}).Ownership() != nil || (*Ring)(nil).Ownership() != nil {
		t.Fatal("empty/nil ring should own nothing")
	}
}
