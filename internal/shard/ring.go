// Package shard partitions secserved's content-addressed keyspace across a
// set of peer nodes: a consistent-hash ring with virtual nodes decides
// which node owns each canonical key, and an HTTP router forwards requests
// to their owner, propagating W3C trace context so cross-node hops stitch
// into one distributed trace.
//
// Consistent hashing keeps the partition stable under membership change:
// removing one node reassigns only the keys it owned, and every node
// computes the same assignment independently — no coordinator, no shared
// state, just the same peer list on every node.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-node virtual point count. 128 points per
// node keeps the expected ownership imbalance within a few percent for
// small clusters while the ring stays tiny (N×128 16-byte points).
const DefaultVirtualNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring. Build one with NewRing; all
// methods are safe for concurrent use.
type Ring struct {
	points []point // sorted by hash
	nodes  []string
	vnodes int
}

// NewRing builds a ring over nodes (order-insensitive — every peer builds
// the identical ring from the same membership set). vnodes ≤ 0 selects
// DefaultVirtualNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: pointHash(n, i), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break on node name so every peer
		// still agrees on ownership.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// pointHash places virtual node i of a node on the ring.
func pointHash(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", node, i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a key on the ring.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the node owning key: the first virtual point at or after
// the key's hash, wrapping at the top of the ring. An empty ring owns
// nothing ("").
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Successors returns up to n distinct nodes in ring order starting at the
// key's owner — the key's deterministic preference list. Successors(key, 1)
// is the owner; Successors(key, 2) adds the replication successor; walking
// the full list yields the failover order every peer agrees on.
func (r *Ring) Successors(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Ownership returns the fraction of the hash space each node owns — the arc
// between consecutive virtual points, attributed to the point that closes
// it, wrapping at the top of the ring. Fractions sum to 1 (up to float
// rounding); with DefaultVirtualNodes the spread stays within a few percent
// of 1/N, and the cluster-status plane surfaces it so a misbalanced ring is
// visible instead of a mystery hot node.
func (r *Ring) Ownership() map[string]float64 {
	if r == nil || len(r.points) == 0 {
		return nil
	}
	out := make(map[string]float64, len(r.nodes))
	const span = float64(1<<63) * 2 // 2^64 as a float
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arc := p.hash - prev // wraps correctly in uint64 arithmetic
		out[p.node] += float64(arc) / span
		prev = p.hash
	}
	return out
}

// Nodes returns the ring's membership, sorted. The slice is a copy.
func (r *Ring) Nodes() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Size returns the number of nodes.
func (r *Ring) Size() int {
	if r == nil {
		return 0
	}
	return len(r.nodes)
}
