package shard

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(threshold int, base, max time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(BreakerOptions{
		FailureThreshold: threshold,
		OpenBase:         base,
		OpenMax:          max,
		now:              clk.now,
	}.withDefaults())
	return b, clk
}

// TestBreakerLifecycle walks closed → open → half-open → closed: the
// breaker trips on consecutive failures, refuses while open, admits a
// single trial after the backoff, and closes on trial success.
func TestBreakerLifecycle(t *testing.T) {
	b, clk := testBreaker(3, time.Second, 30*time.Second)
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.Fail()
	b.Fail()
	if b.State() != BreakerClosed {
		t.Fatalf("tripped below threshold: %v", b.State())
	}
	b.Fail()
	if b.State() != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker inside backoff admitted a request")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("expired open breaker refused the half-open trial")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.OK()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful trial did not close the breaker")
	}
}

// TestBreakerBackoffDoubles: each failed half-open trial doubles the open
// period, capped at OpenMax.
func TestBreakerBackoffDoubles(t *testing.T) {
	b, clk := testBreaker(1, time.Second, 4*time.Second)
	wantOpen := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second}
	b.Fail() // trips immediately (threshold 1)
	for i, d := range wantOpen {
		if b.State() != BreakerOpen {
			t.Fatalf("round %d: state %v, want open", i, b.State())
		}
		clk.advance(d - time.Millisecond)
		if b.Allow() {
			t.Fatalf("round %d: admitted before %v backoff elapsed", i, d)
		}
		clk.advance(2 * time.Millisecond)
		if !b.Allow() {
			t.Fatalf("round %d: trial refused after %v backoff", i, d)
		}
		b.Fail() // trial fails: re-open with doubled backoff
	}
	// Recovery resets the backoff ladder.
	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("trial refused after cap backoff")
	}
	b.OK()
	b.Fail()
	if b.State() != BreakerOpen {
		t.Fatal("post-recovery failure did not trip (threshold 1)")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("backoff ladder did not reset after recovery: first open period should be base again")
	}
}

// TestBreakerSetTransitions checks the set-level creation-on-demand,
// snapshot, and transition callback.
func TestBreakerSetTransitions(t *testing.T) {
	s := NewBreakerSet(BreakerOptions{FailureThreshold: 2})
	var transitions atomic.Int64
	var lastFrom, lastTo BreakerState
	s.OnTransition = func(node string, from, to BreakerState) {
		transitions.Add(1)
		lastFrom, lastTo = from, to
	}
	if st := s.State("n2"); st != BreakerClosed {
		t.Fatalf("fresh node state = %v", st)
	}
	s.Fail("n2")
	s.Fail("n2")
	if got := s.State("n2"); got != BreakerOpen {
		t.Fatalf("n2 state = %v, want open", got)
	}
	if transitions.Load() != 1 || lastFrom != BreakerClosed || lastTo != BreakerOpen {
		t.Fatalf("transition callback: n=%d %v→%v", transitions.Load(), lastFrom, lastTo)
	}
	s.OK("n2")
	if transitions.Load() != 2 || lastTo != BreakerClosed {
		t.Fatalf("recovery transition not observed: n=%d →%v", transitions.Load(), lastTo)
	}
	states := s.States()
	if len(states) != 1 || states["n2"] != BreakerClosed {
		t.Fatalf("States() = %v", states)
	}
	// Nil set is inert and allows everything.
	var nilSet *BreakerSet
	if !nilSet.Allow("x") {
		t.Fatal("nil set refused")
	}
	nilSet.Fail("x")
	nilSet.OK("x")
}

// TestRingSuccessors: the successor list starts at the owner, contains
// distinct nodes, and is consistent across the membership.
func TestRingSuccessors(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	for _, key := range []string{"a", "b", "c", "d", "e"} {
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("key %q: %d successors, want 3", key, len(succ))
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("key %q: successors[0] = %s, owner = %s", key, succ[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("key %q: duplicate successor %s in %v", key, n, succ)
			}
			seen[n] = true
		}
		if got := r.Successors(key, 10); len(got) != 3 {
			t.Fatalf("over-asking yielded %v", got)
		}
		if got := r.Successors(key, 1); len(got) != 1 || got[0] != r.Owner(key) {
			t.Fatalf("Successors(key,1) = %v", got)
		}
	}
	var nilRing *Ring
	if nilRing.Successors("x", 2) != nil {
		t.Fatal("nil ring returned successors")
	}
}

// TestHealthyOwnerFailsOver: with the owner's breaker open, HealthyOwner
// deterministically picks the next successor; when it recovers, ownership
// snaps back.
func TestHealthyOwnerFailsOver(t *testing.T) {
	peers := map[string]string{
		"n1": "http://127.0.0.1:1", "n2": "http://127.0.0.1:2", "n3": "http://127.0.0.1:3",
	}
	rt, err := NewRouter("n1", peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by a remote node.
	var key, owner string
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if o := rt.Ring().Owner(k); o != "n1" {
			key, owner = k, o
			break
		}
	}
	if key == "" {
		t.Fatal("no remote-owned key found")
	}
	if n, _, failover := rt.HealthyOwner(key); n != owner || failover {
		t.Fatalf("healthy ring: owner=%s failover=%v, want %s/false", n, failover, owner)
	}
	// Trip the owner's breaker: ownership moves to the next successor.
	for i := 0; i < 3; i++ {
		rt.Breakers.Fail(owner)
	}
	wantNext := rt.Ring().Successors(key, 3)[1]
	n, self, failover := rt.HealthyOwner(key)
	if n != wantNext || !failover {
		t.Fatalf("failover owner = %s (failover=%v), want %s/true", n, failover, wantNext)
	}
	if self != (n == "n1") {
		t.Fatalf("self flag inconsistent: node=%s self=%v", n, self)
	}
	// Recovery restores the primary owner.
	rt.Breakers.OK(owner)
	if n, _, failover := rt.HealthyOwner(key); n != owner || failover {
		t.Fatalf("post-recovery owner = %s failover=%v", n, failover)
	}
}

// TestProberDrivesBreaker boots a flappable health endpoint and checks the
// prober opens the breaker while the peer is down and closes it (firing
// OnHealthy) when it recovers.
func TestProberDrivesBreaker(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	peers := map[string]string{"self": "http://127.0.0.1:1", "peer": ts.URL}
	rt, err := NewRouter("self", peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.Breakers = NewBreakerSet(BreakerOptions{FailureThreshold: 2, OpenBase: 50 * time.Millisecond, OpenMax: 100 * time.Millisecond})
	var recoveries atomic.Int64
	p := NewProber(rt, 20*time.Millisecond)
	p.OnHealthy = func(node string) {
		if node == "peer" {
			recoveries.Add(1)
		}
	}
	p.Start()
	defer p.Stop()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (state=%v)", desc, rt.Breakers.State("peer"))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("initial healthy probe", func() bool { return recoveries.Load() > 0 })
	healthy.Store(false)
	waitFor("breaker to open", func() bool { return rt.Breakers.State("peer") == BreakerOpen })
	healthy.Store(true)
	waitFor("breaker to close", func() bool { return rt.Breakers.State("peer") == BreakerClosed })
	if probes, failed := p.Stats(); probes == 0 || failed == 0 {
		t.Fatalf("probe stats: probes=%d failed=%d", probes, failed)
	}
}

// TestBreakerReleaseReturnsTrialSlot: a half-open trial abandoned without a
// verdict (the forwarding request was canceled client-side) must return the
// slot, or the breaker wedges half-open and no probe can ever close it.
func TestBreakerReleaseReturnsTrialSlot(t *testing.T) {
	b, clk := testBreaker(1, time.Second, time.Second)
	b.Fail()
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("expired open breaker refused the half-open trial")
	}
	if b.Allow() {
		t.Fatal("second caller won an already-taken trial slot")
	}
	b.Release()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after release = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("released trial slot was not reusable")
	}
	b.OK()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful retrial = %v, want closed", b.State())
	}
	// Release on a closed breaker is a no-op.
	b.Release()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("release disturbed a closed breaker")
	}
}
