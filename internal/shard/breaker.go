package shard

import (
	"math"
	"sync"
	"time"
)

// BreakerState is the lifecycle state of one peer's circuit breaker.
type BreakerState int32

// Breaker states. The zero value is Closed so an untouched peer is assumed
// healthy.
const (
	// BreakerClosed: the peer is healthy; requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the open period elapsed; exactly one trial request
	// (a forwarded submission or an active health probe) is allowed through
	// to decide whether the peer recovered.
	BreakerHalfOpen
	// BreakerOpen: consecutive failures tripped the breaker; requests are
	// refused locally until the backoff deadline passes.
	BreakerOpen
)

// String returns the state's metrics-stable name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerOptions tunes a BreakerSet.
type BreakerOptions struct {
	// FailureThreshold is the consecutive-failure count that opens a closed
	// breaker (default 3).
	FailureThreshold int
	// OpenBase is the first open period; each consecutive re-open (a failed
	// half-open trial) doubles it up to OpenMax (defaults 1s / 30s).
	OpenBase time.Duration
	OpenMax  time.Duration

	// now substitutes the clock in tests.
	now func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.OpenBase <= 0 {
		o.OpenBase = time.Second
	}
	if o.OpenMax <= 0 {
		o.OpenMax = 30 * time.Second
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Breaker is one peer's circuit breaker: closed while the peer behaves,
// open (refusing requests locally, so callers fail over without paying a
// transport timeout) after FailureThreshold consecutive failures, and
// half-open — admitting a single trial — once the capped-backoff open
// period elapses. Safe for concurrent use.
type Breaker struct {
	opts BreakerOptions

	mu          sync.Mutex
	state       BreakerState
	consecFails int       // consecutive failures while closed
	opens       int       // consecutive open periods (drives backoff doubling)
	until       time.Time // end of the current open period
	probing     bool      // the half-open trial slot is taken
}

func newBreaker(opts BreakerOptions) *Breaker {
	return &Breaker{opts: opts}
}

// Allow reports whether a request to the peer may proceed, moving an
// expired open breaker to half-open. In half-open exactly one caller wins
// the trial slot; everyone else is refused until the trial reports OK or
// Fail. A nil breaker allows everything.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.opts.now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// OK records a successful request: the breaker closes and all failure
// history resets.
func (b *Breaker) OK() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecFails = 0
	b.opens = 0
	b.probing = false
}

// Release returns an unused half-open trial slot without judging the peer.
// Callers whose request was aborted for reasons unrelated to the peer's
// health (the client canceled mid-forward) must call this instead of OK or
// Fail: leaving the slot taken would wedge the breaker half-open forever,
// since every later Allow — including the health prober's — is refused
// while a trial is nominally in flight.
func (b *Breaker) Release() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Fail records a failed request (transport error or 5xx). A closed breaker
// opens after FailureThreshold consecutive failures; a half-open trial
// failure re-opens with doubled backoff.
func (b *Breaker) Fail() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.opts.FailureThreshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.openLocked()
	case BreakerOpen:
		// Failures while open (a racing request that was already in flight
		// when the breaker tripped) neither extend nor escalate the backoff.
	}
}

// openLocked starts an open period with capped exponential backoff.
func (b *Breaker) openLocked() {
	b.opens++
	d := b.opts.OpenBase
	if shift := b.opens - 1; shift > 0 {
		if shift > 30 || float64(d)*math.Pow(2, float64(shift)) > float64(b.opts.OpenMax) {
			d = b.opts.OpenMax
		} else {
			d <<= shift
		}
	}
	if d > b.opts.OpenMax {
		d = b.opts.OpenMax
	}
	b.state = BreakerOpen
	b.until = b.opts.now().Add(d)
	b.consecFails = 0
	b.probing = false
}

// State returns the breaker's current state without side effects (an
// expired open period still reads as open until someone calls Allow).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet holds one breaker per peer node, creating them on first use.
// OnTransition, when set before traffic starts, observes every state
// change (breaker trip, half-open trial, recovery) for logging and the
// flight recorder.
type BreakerSet struct {
	opts BreakerOptions

	// OnTransition is invoked (outside the per-breaker lock) whenever a
	// node's breaker changes state. Set before concurrent use.
	OnTransition func(node string, from, to BreakerState)

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet builds a set with the given options.
func NewBreakerSet(opts BreakerOptions) *BreakerSet {
	return &BreakerSet{opts: opts.withDefaults(), m: make(map[string]*Breaker)}
}

// breaker returns (creating if needed) the breaker for node. Nil-safe.
func (s *BreakerSet) breaker(node string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[node]
	if !ok {
		b = newBreaker(s.opts)
		s.m[node] = b
	}
	return b
}

// Allow reports whether a request to node may proceed (see Breaker.Allow).
func (s *BreakerSet) Allow(node string) bool {
	if s == nil {
		return true
	}
	b := s.breaker(node)
	before := b.State()
	ok := b.Allow()
	s.notify(node, before, b.State())
	return ok
}

// OK records a successful request to node.
func (s *BreakerSet) OK(node string) {
	if s == nil {
		return
	}
	b := s.breaker(node)
	before := b.State()
	b.OK()
	s.notify(node, before, b.State())
}

// Release returns node's unused half-open trial slot (see Breaker.Release).
func (s *BreakerSet) Release(node string) {
	if s == nil {
		return
	}
	s.breaker(node).Release()
}

// Fail records a failed request to node.
func (s *BreakerSet) Fail(node string) {
	if s == nil {
		return
	}
	b := s.breaker(node)
	before := b.State()
	b.Fail()
	s.notify(node, before, b.State())
}

func (s *BreakerSet) notify(node string, from, to BreakerState) {
	if from != to && s.OnTransition != nil {
		s.OnTransition(node, from, to)
	}
}

// State returns node's breaker state without side effects.
func (s *BreakerSet) State(node string) BreakerState {
	if s == nil {
		return BreakerClosed
	}
	return s.breaker(node).State()
}

// States snapshots every known breaker, keyed by node.
func (s *BreakerSet) States() map[string]BreakerState {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerState, len(s.m))
	for n, b := range s.m {
		out[n] = b.State()
	}
	return out
}
