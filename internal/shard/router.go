package shard

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// ForwardedHeader marks a request already routed by a peer, carrying the
// forwarding node's name. A receiving node never re-forwards such a
// request — with a consistent membership view one hop reaches the owner,
// and the header breaks the loop when views temporarily diverge.
const ForwardedHeader = "X-Secserved-Forwarded"

// ServedByHeader names the node that actually served a response.
const ServedByHeader = "X-Secserved-Node"

// ParsePeers parses a peer specification of the form
// "name=http://host:port,name2=http://host2:port" into a name→URL map.
func ParsePeers(spec string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		rawURL = strings.TrimSpace(rawURL)
		if !ok || name == "" || rawURL == "" {
			return nil, fmt.Errorf("shard: bad peer %q (want name=url)", part)
		}
		if strings.Contains(name, ":") {
			// Node names prefix job IDs as "<node>:<id>"; a colon in the
			// name would make the prefix ambiguous.
			return nil, fmt.Errorf("shard: peer name %q must not contain ':'", name)
		}
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("shard: bad peer URL %q", rawURL)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("shard: duplicate peer %q", name)
		}
		peers[name] = strings.TrimRight(rawURL, "/")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("shard: empty peer set")
	}
	return peers, nil
}

// Router decides key ownership and forwards HTTP requests to peer nodes.
// It is immutable after construction and safe for concurrent use; a nil
// router owns everything locally.
type Router struct {
	self string
	ring *Ring
	urls map[string]string

	// HTTP is the transport for peer calls. The default dials with a short
	// timeout so an unreachable owner fails fast into local fallback, but
	// leaves the overall request bounded only by the caller's context (a
	// forwarded analysis may legitimately hold the connection for its
	// synchronous wait).
	HTTP *http.Client

	// Breakers holds the per-peer circuit breakers Forward reports into and
	// HealthyOwner consults. NewRouter installs a default set; replace it
	// (before traffic starts) to tune thresholds and backoff.
	Breakers *BreakerSet
}

// defaultTransport fails fast on dead peers without capping response time.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// NewRouter builds a router for node self over the peers map (name→base
// URL, self included). vnodes ≤ 0 selects DefaultVirtualNodes.
func NewRouter(self string, peers map[string]string, vnodes int) (*Router, error) {
	if self == "" {
		return nil, fmt.Errorf("shard: no self node name given")
	}
	if _, ok := peers[self]; !ok {
		return nil, fmt.Errorf("shard: self %q not in peer set", self)
	}
	names := make([]string, 0, len(peers))
	urls := make(map[string]string, len(peers))
	for n, u := range peers {
		names = append(names, n)
		urls[n] = strings.TrimRight(u, "/")
	}
	sort.Strings(names)
	return &Router{
		self:     self,
		ring:     NewRing(names, vnodes),
		urls:     urls,
		Breakers: NewBreakerSet(BreakerOptions{}),
	}, nil
}

// Self returns this node's name ("" for a nil router).
func (r *Router) Self() string {
	if r == nil {
		return ""
	}
	return r.self
}

// Ring exposes the underlying ring (nil for a nil router).
func (r *Router) Ring() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// Nodes returns the membership, sorted.
func (r *Router) Nodes() []string {
	if r == nil {
		return nil
	}
	return r.ring.Nodes()
}

// Owner returns the node owning key and whether that node is this one. A
// nil router owns everything itself.
func (r *Router) Owner(key string) (node string, self bool) {
	if r == nil {
		return "", true
	}
	node = r.ring.Owner(key)
	return node, node == r.self
}

// HealthyOwner returns the first node in the key's ring-successor order
// whose circuit breaker admits a request (this node always admits itself),
// and whether that node is this one. failover reports that the primary
// owner was skipped over an open breaker — ownership has failed over to a
// successor, and every peer with a converged breaker view picks the same
// one, so single-flight dedup reassembles on the failover owner. When every
// breaker is open the primary owner is returned anyway (the caller's
// transport error then falls back to local compute). A nil router owns
// everything itself.
//
// Note that Allow on a half-open breaker consumes its single trial slot:
// the request the caller is about to forward IS the trial.
func (r *Router) HealthyOwner(key string) (node string, self, failover bool) {
	if r == nil {
		return "", true, false
	}
	order := r.ring.Successors(key, r.ring.Size())
	for i, n := range order {
		if n == r.self || r.Breakers.Allow(n) {
			return n, n == r.self, i > 0
		}
	}
	if len(order) == 0 {
		return "", true, false
	}
	return order[0], order[0] == r.self, false
}

// Replicas returns the first n nodes of the key's ring-successor order —
// the nodes a result written under key should live on.
func (r *Router) Replicas(key string, n int) []string {
	if r == nil {
		return nil
	}
	return r.ring.Successors(key, n)
}

// URL returns a peer's base URL.
func (r *Router) URL(node string) (string, bool) {
	if r == nil {
		return "", false
	}
	u, ok := r.urls[node]
	return u, ok
}

func (r *Router) httpClient() *http.Client {
	if r.HTTP != nil {
		return r.HTTP
	}
	return defaultHTTPClient
}

// Forward sends an HTTP request to a peer node, marked with the forwarding
// node's name and carrying the caller's trace context as a traceparent
// header (so the peer's request and job spans stitch into the originating
// trace). The peer's circuit breaker records the outcome: a transport
// error or 5xx response counts as a failure, anything else as a success.
// The caller owns the returned response body.
func (r *Router) Forward(ctx context.Context, node, method, path string, body []byte, contentType string) (*http.Response, error) {
	return r.ForwardHeaders(ctx, node, method, path, body, contentType, nil)
}

// ForwardHeaders is Forward with extra request headers (tenant identity,
// replica metadata) copied onto the peer call.
func (r *Router) ForwardHeaders(ctx context.Context, node, method, path string, body []byte, contentType string, extra http.Header) (*http.Response, error) {
	if r == nil {
		return nil, fmt.Errorf("shard: no router")
	}
	base, ok := r.urls[node]
	if !ok {
		return nil, fmt.Errorf("shard: unknown node %q", node)
	}
	var rd *bytes.Reader
	var req *http.Request
	var err error
	if body != nil {
		rd = bytes.NewReader(body)
		req, err = http.NewRequestWithContext(ctx, method, base+path, rd)
	} else {
		req, err = http.NewRequestWithContext(ctx, method, base+path, nil)
	}
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set(ForwardedHeader, r.self)
	obs.Inject(ctx, req.Header)
	resp, err := r.httpClient().Do(req)
	if err != nil {
		// A caller-side cancellation says nothing about the peer's health;
		// only count failures the peer (or the network to it) caused. The
		// trial slot this call may hold is returned either way so a canceled
		// forward cannot wedge the breaker half-open.
		if ctx.Err() == nil {
			r.Breakers.Fail(node)
		} else {
			r.Breakers.Release(node)
		}
		return nil, fmt.Errorf("shard: forwarding to %s: %w", node, err)
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		r.Breakers.Fail(node)
	} else {
		r.Breakers.OK(node)
	}
	return resp, nil
}
