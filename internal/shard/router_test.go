package shard

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n1=http://h1:8600, n2=http://h2:8600/")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers["n1"] != "http://h1:8600" || peers["n2"] != "http://h2:8600" {
		t.Fatalf("peers = %v", peers)
	}
	for _, bad := range []string{
		"",
		"n1",
		"n1=",
		"=http://h1:8600",
		"n1=not a url",
		"n1=http://h1,n1=http://h2",
		"a:b=http://h1:8600",
	} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewRouterValidation(t *testing.T) {
	peers := map[string]string{"n1": "http://h1", "n2": "http://h2"}
	if _, err := NewRouter("", peers, 0); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewRouter("n3", peers, 0); err == nil {
		t.Fatal("self outside peer set accepted")
	}
	r, err := NewRouter("n1", peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Self() != "n1" || len(r.Nodes()) != 2 {
		t.Fatalf("router = %v %v", r.Self(), r.Nodes())
	}
}

func TestOwnerSelf(t *testing.T) {
	r, err := NewRouter("n1", map[string]string{"n1": "http://h1", "n2": "http://h2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawSelf, sawOther := false, false
	for i := 0; i < 200; i++ {
		node, self := r.Owner(string(rune('a' + i%26)))
		if self != (node == "n1") {
			t.Fatalf("self flag inconsistent for %s", node)
		}
		if self {
			sawSelf = true
		} else {
			sawOther = true
		}
	}
	if !sawSelf || !sawOther {
		t.Fatal("expected keys on both nodes")
	}
	var nilRouter *Router
	if node, self := nilRouter.Owner("k"); node != "" || !self {
		t.Fatal("nil router must own everything locally")
	}
}

func TestForwardMarksAndTraces(t *testing.T) {
	var gotForwarded, gotTraceparent, gotBody string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwarded = r.Header.Get(ForwardedHeader)
		gotTraceparent = r.Header.Get(obs.TraceparentHeader)
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	r, err := NewRouter("n1", map[string]string{"n1": "http://unused", "n2": ts.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	tr := obs.NewTracer(col, false)
	ctx, sp := tr.StartSpan(context.Background(), "test.forward")
	resp, err := r.Forward(ctx, "n2", http.MethodPost, "/v1/analyses", []byte(`{"x":1}`), "application/json")
	sp.End()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotForwarded != "n1" {
		t.Fatalf("%s = %q, want n1", ForwardedHeader, gotForwarded)
	}
	if gotTraceparent == "" {
		t.Fatal("no traceparent propagated")
	}
	if tc, ok := obs.ParseTraceparent(gotTraceparent); !ok || tc.TraceID != tr.TraceID() {
		t.Fatalf("traceparent %q does not carry trace %s", gotTraceparent, tr.TraceID())
	}
	if gotBody != `{"x":1}` {
		t.Fatalf("body = %q", gotBody)
	}
}

func TestForwardUnknownNode(t *testing.T) {
	r, err := NewRouter("n1", map[string]string{"n1": "http://h1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Forward(context.Background(), "nope", http.MethodGet, "/", nil, ""); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestForwardUnreachableFailsFast(t *testing.T) {
	// A closed port must return an error (the caller's local-fallback path),
	// not hang.
	r, err := NewRouter("n1", map[string]string{
		"n1": "http://unused",
		"n2": "http://127.0.0.1:1", // reserved port, nothing listens
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Forward(context.Background(), "n2", http.MethodGet, "/v1/healthz", nil, ""); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
}
