package linalg

import (
	"fmt"
	"sort"
)

// Triplet is a single (row, col, value) entry used while assembling a sparse
// matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// COO is a coordinate-format sparse-matrix builder. Duplicate entries are
// summed when converting to CSR, which makes assembling transition-rate
// matrices from guarded commands straightforward.
type COO struct {
	Rows, Cols int
	entries    []Triplet
}

// NewCOO returns an empty builder of the given shape.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Add appends entry (i, j, v). Zero values are dropped.
func (c *COO) Add(i, j int, v float64) {
	if v == 0 {
		return
	}
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("linalg: COO entry (%d,%d) outside %dx%d", i, j, c.Rows, c.Cols))
	}
	c.entries = append(c.entries, Triplet{i, j, v})
}

// NNZ returns the number of raw (possibly duplicate) entries.
func (c *COO) NNZ() int { return len(c.entries) }

// ToCSR converts the builder into compressed-sparse-row form, summing
// duplicates and dropping entries that cancel to zero.
func (c *COO) ToCSR() *CSR {
	sort.Slice(c.entries, func(a, b int) bool {
		ea, eb := c.entries[a], c.entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
	m := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int, c.Rows+1)}
	for k := 0; k < len(c.entries); {
		e := c.entries[k]
		v := e.Val
		k++
		for k < len(c.entries) && c.entries[k].Row == e.Row && c.entries[k].Col == e.Col {
			v += c.entries[k].Val
			k++
		}
		if v == 0 {
			continue
		}
		m.ColIdx = append(m.ColIdx, e.Col)
		m.Val = append(m.Val, v)
		m.RowPtr[e.Row+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// CSR is a compressed-sparse-row matrix: the nonzeros of row i are
// Val[RowPtr[i]:RowPtr[i+1]] in columns ColIdx[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Row returns the column indices and values of row i. The returned slices
// alias the matrix storage and must not be modified.
func (m *CSR) Row(i int) ([]int, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns element (i, j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// MulVec computes dst = m·v (column-vector orientation).
func (m *CSR) MulVec(v Vector, dst Vector) (Vector, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrDimension, m.Rows, m.Cols, len(v))
	}
	if dst == nil {
		dst = NewVector(m.Rows)
	} else if len(dst) != m.Rows {
		return nil, fmt.Errorf("%w: dst len %d, want %d", ErrDimension, len(dst), m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			s += m.Val[k] * v[m.ColIdx[k]]
		}
		dst[i] = s
	}
	return dst, nil
}

// VecMul computes dst = vᵀ·m (row-vector orientation), the hot kernel of
// uniformisation: distributions are row vectors multiplied from the left.
func (m *CSR) VecMul(v Vector, dst Vector) (Vector, error) {
	if len(v) != m.Rows {
		return nil, fmt.Errorf("%w: vec(%d) · %dx%d", ErrDimension, len(v), m.Rows, m.Cols)
	}
	if dst == nil {
		dst = NewVector(m.Cols)
	} else if len(dst) != m.Cols {
		return nil, fmt.Errorf("%w: dst len %d, want %d", ErrDimension, len(dst), m.Cols)
	}
	dst.Fill(0)
	for i := 0; i < m.Rows; i++ {
		a := v[i]
		if a == 0 {
			continue
		}
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			dst[m.ColIdx[k]] += a * m.Val[k]
		}
	}
	return dst, nil
}

// RowSums returns the vector of row sums (total exit rates for a
// transition-rate matrix without diagonal).
func (m *CSR) RowSums() Vector {
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			s += m.Val[k]
		}
		out[i] = s
	}
	return out
}

// Transpose returns mᵀ in CSR form, needed by backward iterations.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int, m.Cols+1)}
	t.ColIdx = make([]int, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	// Count entries per column of m.
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// ToDense expands the matrix; only sensible for small systems and tests.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			d.Add(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// Scale multiplies every stored value by a in place.
func (m *CSR) Scale(a float64) {
	for i := range m.Val {
		m.Val[i] *= a
	}
}
