// Package linalg provides the small dense and sparse linear-algebra kernel
// used by the probabilistic model-checking engine: vectors, dense matrices,
// compressed-sparse-row matrices, direct elimination and the classical
// stationary iterative solvers (Jacobi, Gauss–Seidel, power iteration).
//
// Everything is float64 and allocation-conscious: the model checker calls
// these kernels thousands of times per property, so the hot paths accept
// destination slices and avoid per-call allocation.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when operand shapes do not agree.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Fill sets every component to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Dot returns the inner product v·w.
// It panics if the lengths differ; dimension errors here are programming
// errors, not data errors.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Sum returns the sum of all components.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm1 returns the l1 norm Σ|v_i|.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the l∞ norm max|v_i|.
func (v Vector) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Scale multiplies every component by a in place.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AddScaled performs v += a*w in place.
func (v Vector) AddScaled(a float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
}

// Normalize1 scales v so that its components sum to one. It returns the
// original sum; if the sum is zero or not finite, v is left untouched.
func (v Vector) Normalize1() float64 {
	s := v.Sum()
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return s
	}
	inv := 1 / s
	for i := range v {
		v[i] *= inv
	}
	return s
}

// MaxDiff returns max_i |v_i - w_i|, the convergence criterion used by the
// iterative solvers.
func (v Vector) MaxDiff(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: MaxDiff length mismatch %d != %d", len(v), len(w)))
	}
	var m float64
	for i := range v {
		if d := math.Abs(v[i] - w[i]); d > m {
			m = d
		}
	}
	return m
}

// AllFinite reports whether every component is a finite number.
func (v Vector) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
