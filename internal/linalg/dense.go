package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix. It is used for small systems (direct
// steady-state solves, the matrix-exponential test oracle) where O(n²)
// storage is acceptable.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zero matrix of the given shape.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// DenseFromRows builds a matrix from row slices; all rows must have equal
// length.
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Add increments element (i, j) by x.
func (m *Dense) Add(i, j int, x float64) { m.Data[i*m.Cols+j] += x }

// Clone returns an independent copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Scale multiplies every element by a in place.
func (m *Dense) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddMat performs m += a*other in place.
func (m *Dense) AddMat(a float64, other *Dense) error {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return fmt.Errorf("%w: %dx%d += %dx%d", ErrDimension, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	for i := range m.Data {
		m.Data[i] += a * other.Data[i]
	}
	return nil
}

// Mul returns the product m·other.
func (m *Dense) Mul(other *Dense) (*Dense, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrDimension, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewDense(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			row := other.Data[k*other.Cols : (k+1)*other.Cols]
			dst := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, b := range row {
				dst[j] += a * b
			}
		}
	}
	return out, nil
}

// MulVec computes dst = m·v. dst may be nil, in which case it is allocated.
func (m *Dense) MulVec(v Vector, dst Vector) (Vector, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrDimension, m.Rows, m.Cols, len(v))
	}
	if dst == nil {
		dst = NewVector(m.Rows)
	} else if len(dst) != m.Rows {
		return nil, fmt.Errorf("%w: dst len %d, want %d", ErrDimension, len(dst), m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		dst[i] = s
	}
	return dst, nil
}

// VecMul computes dst = vᵀ·m (row vector times matrix), the orientation used
// for probability distributions.
func (m *Dense) VecMul(v Vector, dst Vector) (Vector, error) {
	if len(v) != m.Rows {
		return nil, fmt.Errorf("%w: vec(%d) · %dx%d", ErrDimension, len(v), m.Rows, m.Cols)
	}
	if dst == nil {
		dst = NewVector(m.Cols)
	} else if len(dst) != m.Cols {
		return nil, fmt.Errorf("%w: dst len %d, want %d", ErrDimension, len(dst), m.Cols)
	}
	dst.Fill(0)
	for i := 0; i < m.Rows; i++ {
		a := v[i]
		if a == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, b := range row {
			dst[j] += a * b
		}
	}
	return dst, nil
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// NormInf returns the maximum absolute row sum.
func (m *Dense) NormInf() float64 {
	var max float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, x := range m.Data[i*m.Cols : (i+1)*m.Cols] {
			s += math.Abs(x)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SolveDense solves A·x = b by Gaussian elimination with partial pivoting.
// A and b are not modified. It returns ErrSingular for (numerically)
// singular systems.
func SolveDense(a *Dense, b Vector) (Vector, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: SolveDense needs square matrix, got %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	if a.Rows != len(b) {
		return nil, fmt.Errorf("%w: matrix %dx%d, rhs %d", ErrDimension, a.Rows, a.Cols, len(b))
	}
	n := a.Rows
	// Work on copies; the augmented column rides along in x.
	m := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		p := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / p
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				m.Add(r, c, -f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	if !x.AllFinite() {
		return nil, ErrSingular
	}
	return x, nil
}

// ErrSingular is returned by direct solvers when the system has no unique
// finite solution.
var ErrSingular = errors.New("linalg: singular system")

func swapRows(m *Dense, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
