package linalg

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// TestRobustSolveEscalationOrder pins the chain: gauss-seidel first, then
// jacobi with a relaxed budget, then dense direct. A one-sweep iteration
// budget at an unreachable tolerance forces both iterative steps to fail.
func TestRobustSolveEscalationOrder(t *testing.T) {
	a := diagonallyDominantCSR(rand.New(rand.NewSource(3)), 8)
	b := NewVector(8)
	for i := range b {
		b[i] = float64(i + 1)
	}
	var stats RobustStats
	x, err := RobustSolve(context.Background(), a, b, RobustOpts{
		Opts:  IterOpts{Tol: 1e-15, MaxIter: 1},
		Stats: &stats,
	})
	if err != nil {
		t.Fatalf("RobustSolve: %v", err)
	}
	want := []string{MethodGaussSeidel, MethodJacobi, MethodDense}
	if len(stats.Attempts) != len(want) {
		t.Fatalf("got %d attempts, want %d: %+v", len(stats.Attempts), len(want), stats.Attempts)
	}
	for i, at := range stats.Attempts {
		if at.Method != want[i] {
			t.Errorf("attempt %d method = %s, want %s", i, at.Method, want[i])
		}
	}
	for _, at := range stats.Attempts[:2] {
		var ce *ConvergenceError
		if !errors.As(at.Err, &ce) {
			t.Errorf("%s attempt error = %v, want *ConvergenceError", at.Method, at.Err)
		}
	}
	if stats.Attempts[1].Iterations != 2 {
		t.Errorf("jacobi ran %d sweeps, want 2 (doubled budget)", stats.Attempts[1].Iterations)
	}
	if stats.Method != MethodDense || stats.Attempts[2].Err != nil {
		t.Fatalf("final method = %q (err %v), want dense success", stats.Method, stats.Attempts[2].Err)
	}
	// The dense result must actually solve the system.
	direct, err := SolveDense(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := x[i] - direct[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], direct[i])
		}
	}
}

// TestRobustSolveFirstMethodWins: on a well-behaved system the chain stops
// after the first step.
func TestRobustSolveFirstMethodWins(t *testing.T) {
	a := diagonallyDominantCSR(rand.New(rand.NewSource(5)), 12)
	b := NewVector(12)
	b[0] = 1
	var stats RobustStats
	if _, err := RobustSolve(context.Background(), a, b, RobustOpts{Stats: &stats}); err != nil {
		t.Fatalf("RobustSolve: %v", err)
	}
	if len(stats.Attempts) != 1 || stats.Method != MethodGaussSeidel {
		t.Fatalf("attempts = %+v method = %q, want single gauss-seidel", stats.Attempts, stats.Method)
	}
}

// TestRobustSolveInjectedDivergence: an armed solver.diverge point fails
// the first attempt synthetically; the fallback still solves the system and
// the attempt history marks the injection.
func TestRobustSolveInjectedDivergence(t *testing.T) {
	in, err := fault.Parse("solver.diverge:n=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(in)
	defer fault.Disable()
	a := diagonallyDominantCSR(rand.New(rand.NewSource(7)), 6)
	b := NewVector(6)
	b[2] = 1
	var stats RobustStats
	rec := &obs.AttemptRecorder{}
	ctx := obs.WithAttempts(context.Background(), rec)
	x, err := RobustSolve(ctx, a, b, RobustOpts{Stats: &stats})
	if err != nil {
		t.Fatalf("RobustSolve: %v", err)
	}
	if len(stats.Attempts) != 2 || !stats.Attempts[0].Injected || stats.Attempts[1].Err != nil {
		t.Fatalf("attempts = %+v, want injected failure then success", stats.Attempts)
	}
	if stats.Method != MethodJacobi {
		t.Fatalf("method = %q, want jacobi fallback", stats.Method)
	}
	direct, err := SolveDense(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := x[i] - direct[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], direct[i])
		}
	}
	attempts := rec.Attempts()
	if len(attempts) != 2 || attempts[0].Outcome != obs.AttemptInjected || attempts[1].Outcome != obs.AttemptOK {
		t.Fatalf("recorded attempts = %+v, want injected then ok", attempts)
	}
}

// TestRobustSolveFatalErrorsDoNotEscalate: a singular system is not a
// convergence problem; the chain must abort on the first step.
func TestRobustSolveFatalErrorsDoNotEscalate(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 1) // zero diagonal at row 0
	coo.Add(1, 1, 1)
	var stats RobustStats
	_, err := RobustSolve(context.Background(), coo.ToCSR(), Vector{1, 1}, RobustOpts{Stats: &stats})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if len(stats.Attempts) != 1 {
		t.Fatalf("attempts = %+v, want exactly one", stats.Attempts)
	}
}

// TestRobustSolveDenseSkippedAboveLimit: systems beyond DenseLimit exhaust
// the chain without attempting the dense expansion, and the error still
// unwraps to ErrNoConvergence.
func TestRobustSolveDenseSkippedAboveLimit(t *testing.T) {
	a := diagonallyDominantCSR(rand.New(rand.NewSource(9)), 5)
	b := NewVector(5)
	b[0] = 1
	var stats RobustStats
	_, err := RobustSolve(context.Background(), a, b, RobustOpts{
		Opts:       IterOpts{Tol: 1e-15, MaxIter: 1},
		DenseLimit: 2,
		Stats:      &stats,
	})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if len(stats.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want iterative steps only", stats.Attempts)
	}
	for _, at := range stats.Attempts {
		if at.Method == MethodDense {
			t.Fatal("dense attempted above its size limit")
		}
	}
}

// TestRobustSolveHonorsContext: a canceled context aborts before any step.
func TestRobustSolveHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := diagonallyDominantCSR(rand.New(rand.NewSource(13)), 4)
	var stats RobustStats
	_, err := RobustSolve(ctx, a, NewVector(4), RobustOpts{Stats: &stats})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(stats.Attempts) != 0 {
		t.Fatalf("attempts = %+v, want none", stats.Attempts)
	}
}
