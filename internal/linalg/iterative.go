package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iteration limit reached without convergence")

// IterOpts configures the iterative solvers. The zero value selects the
// defaults below.
type IterOpts struct {
	// Tol is the termination tolerance on the max-norm change between
	// successive iterates, relative to the solution magnitude
	// (delta ≤ Tol·(1 + maxᵢ|xᵢ|)). Default 1e-12.
	Tol float64
	// MaxIter bounds the number of sweeps. Default 100000.
	MaxIter int
}

func (o IterOpts) withDefaults() IterOpts {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100000
	}
	return o
}

// Jacobi solves A·x = b for square CSR A with nonzero diagonal using Jacobi
// iteration: x_i ← (b_i − Σ_{j≠i} a_ij x_j) / a_ii.
func Jacobi(a *CSR, b Vector, opts IterOpts) (Vector, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, fmt.Errorf("%w: Jacobi A %dx%d, b %d", ErrDimension, a.Rows, a.Cols, len(b))
	}
	opts = opts.withDefaults()
	n := a.Rows
	diag, err := extractDiag(a)
	if err != nil {
		return nil, err
	}
	x := NewVector(n)
	next := NewVector(n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := 0; i < n; i++ {
			s := b[i]
			cols, vals := a.Row(i)
			for k, j := range cols {
				if j != i {
					s -= vals[k] * x[j]
				}
			}
			next[i] = s / diag[i]
		}
		d := x.MaxDiff(next)
		x, next = next, x
		if d <= opts.Tol*(1+x.NormInf()) {
			if !x.AllFinite() {
				return nil, ErrSingular
			}
			return x, nil
		}
	}
	return nil, ErrNoConvergence
}

// GaussSeidel solves A·x = b for square CSR A with nonzero diagonal using
// Gauss–Seidel sweeps (in-place updates, typically ~2x faster than Jacobi on
// the diagonally dominant systems produced by Markov models).
func GaussSeidel(a *CSR, b Vector, opts IterOpts) (Vector, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, fmt.Errorf("%w: GaussSeidel A %dx%d, b %d", ErrDimension, a.Rows, a.Cols, len(b))
	}
	opts = opts.withDefaults()
	n := a.Rows
	diag, err := extractDiag(a)
	if err != nil {
		return nil, err
	}
	x := NewVector(n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		var maxDelta, maxAbs float64
		for i := 0; i < n; i++ {
			s := b[i]
			cols, vals := a.Row(i)
			for k, j := range cols {
				if j != i {
					s -= vals[k] * x[j]
				}
			}
			nv := s / diag[i]
			if d := math.Abs(nv - x[i]); d > maxDelta {
				maxDelta = d
			}
			if a := math.Abs(nv); a > maxAbs {
				maxAbs = a
			}
			x[i] = nv
		}
		if maxDelta <= opts.Tol*(1+maxAbs) {
			if !x.AllFinite() {
				return nil, ErrSingular
			}
			return x, nil
		}
	}
	return nil, ErrNoConvergence
}

func extractDiag(a *CSR) (Vector, error) {
	diag := NewVector(a.Rows)
	for i := 0; i < a.Rows; i++ {
		d := a.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("linalg: zero diagonal at row %d: %w", i, ErrSingular)
		}
		diag[i] = d
	}
	return diag, nil
}

// PowerStationary computes the stationary distribution π = π·P of a row-
// stochastic CSR matrix P by power iteration starting from the uniform
// distribution. The chain must have a unique stationary distribution that
// power iteration can reach (e.g. the uniformised DTMC of an irreducible
// CTMC, which is aperiodic by construction).
func PowerStationary(p *CSR, opts IterOpts) (Vector, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("%w: PowerStationary needs square matrix, got %dx%d", ErrDimension, p.Rows, p.Cols)
	}
	opts = opts.withDefaults()
	n := p.Rows
	x := NewVector(n)
	x.Fill(1 / float64(n))
	next := NewVector(n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		if _, err := p.VecMul(x, next); err != nil {
			return nil, err
		}
		next.Normalize1()
		d := x.MaxDiff(next)
		x, next = next, x
		if d < opts.Tol {
			if !x.AllFinite() {
				return nil, ErrSingular
			}
			return x, nil
		}
	}
	return nil, ErrNoConvergence
}
