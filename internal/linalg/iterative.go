package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget before reaching the requested tolerance. Solvers wrap it
// in a *ConvergenceError carrying the iteration count and final residual.
var ErrNoConvergence = errors.New("linalg: iteration limit reached without convergence")

// ConvergenceError reports a failed iterative solve with enough context to
// act on it: which method ran, how many sweeps it used, and how far from
// the tolerance it stopped. It unwraps to ErrNoConvergence, so existing
// errors.Is checks keep working.
type ConvergenceError struct {
	// Method is the solver name ("jacobi", "gauss-seidel", "power").
	Method string
	// Iterations is the number of sweeps performed (the MaxIter budget).
	Iterations int
	// Residual is the final max-norm change between successive iterates.
	Residual float64
	// Tol is the tolerance that was not reached.
	Tol float64
}

// Error implements error.
func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("linalg: %s did not converge in %d iterations (residual %.3g, tol %.3g)",
		e.Method, e.Iterations, e.Residual, e.Tol)
}

// Unwrap makes errors.Is(err, ErrNoConvergence) succeed.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// IterStats reports what an iterative solve actually did. Point IterOpts at
// one to collect it; the solver fills it on both success and failure.
type IterStats struct {
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the final max-norm change between successive iterates.
	Residual float64
	// Converged records whether the tolerance was met.
	Converged bool
	// Trace is the sampled convergence curve (log-spaced, so a 10k-iteration
	// solve yields ~50 points), filled when IterOpts.CollectTrace is set.
	// The final iteration is always included.
	Trace []obs.ResidualPoint
}

// IterOpts configures the iterative solvers. The zero value selects the
// defaults below.
type IterOpts struct {
	// Tol is the termination tolerance on the max-norm change between
	// successive iterates, relative to the solution magnitude
	// (delta ≤ Tol·(1 + maxᵢ|xᵢ|)). Default 1e-12.
	Tol float64
	// MaxIter bounds the number of sweeps. Default 100000.
	MaxIter int
	// Stats, when non-nil, receives iteration count and final residual —
	// the instrumentation hook used by internal/ctmc spans.
	Stats *IterStats
	// CollectTrace samples the per-iteration residual into Stats.Trace
	// (requires Stats). Sampling is log-spaced: the interval grows ~25% per
	// sample, bounding the trace at O(log MaxIter) points.
	CollectTrace bool
}

func (o IterOpts) withDefaults() IterOpts {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100000
	}
	return o
}

// Jacobi solves A·x = b for square CSR A with nonzero diagonal using Jacobi
// iteration: x_i ← (b_i − Σ_{j≠i} a_ij x_j) / a_ii.
func Jacobi(a *CSR, b Vector, opts IterOpts) (Vector, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, fmt.Errorf("%w: Jacobi A %dx%d, b %d", ErrDimension, a.Rows, a.Cols, len(b))
	}
	opts = opts.withDefaults()
	n := a.Rows
	diag, err := extractDiag(a)
	if err != nil {
		return nil, err
	}
	x := NewVector(n)
	next := NewVector(n)
	smp := opts.sampler()
	var lastDelta float64
	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := 0; i < n; i++ {
			s := b[i]
			cols, vals := a.Row(i)
			for k, j := range cols {
				if j != i {
					s -= vals[k] * x[j]
				}
			}
			next[i] = s / diag[i]
		}
		d := x.MaxDiff(next)
		x, next = next, x
		lastDelta = d
		smp.observe(iter+1, d)
		if d <= opts.Tol*(1+x.NormInf()) {
			if !x.AllFinite() {
				return nil, ErrSingular
			}
			opts.report(iter+1, d, true, smp)
			return x, nil
		}
	}
	opts.report(opts.MaxIter, lastDelta, false, smp)
	return nil, &ConvergenceError{Method: "jacobi", Iterations: opts.MaxIter, Residual: lastDelta, Tol: opts.Tol}
}

// report fills the caller-provided stats block, if any, attaching the
// sampled convergence curve (with the final iteration appended if the
// sampler's stride skipped it).
func (o IterOpts) report(iterations int, residual float64, converged bool, smp *residualSampler) {
	if o.Stats == nil {
		return
	}
	st := IterStats{Iterations: iterations, Residual: residual, Converged: converged}
	if smp != nil {
		if n := len(smp.pts); n == 0 || smp.pts[n-1].Iteration != iterations {
			smp.pts = append(smp.pts, obs.ResidualPoint{Iteration: iterations, Residual: residual})
		}
		st.Trace = smp.pts
	}
	*o.Stats = st
}

// sampler returns a residual sampler when tracing is requested, else nil (a
// nil sampler's observe is a no-op, so the solver loops stay branch-cheap).
func (o IterOpts) sampler() *residualSampler {
	if !o.CollectTrace || o.Stats == nil {
		return nil
	}
	return &residualSampler{}
}

// residualSampler records (iteration, residual) pairs at log-spaced
// intervals: each recorded sample pushes the next sample point ~25% further
// out, so the trace grows with the log of the iteration count.
type residualSampler struct {
	pts  []obs.ResidualPoint
	next int // next 1-based iteration to record
}

func (s *residualSampler) observe(iter int, residual float64) {
	if s == nil || iter < s.next {
		return
	}
	s.pts = append(s.pts, obs.ResidualPoint{Iteration: iter, Residual: residual})
	s.next = iter + iter/4 + 1
}

// GaussSeidel solves A·x = b for square CSR A with nonzero diagonal using
// Gauss–Seidel sweeps (in-place updates, typically ~2x faster than Jacobi on
// the diagonally dominant systems produced by Markov models).
func GaussSeidel(a *CSR, b Vector, opts IterOpts) (Vector, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, fmt.Errorf("%w: GaussSeidel A %dx%d, b %d", ErrDimension, a.Rows, a.Cols, len(b))
	}
	opts = opts.withDefaults()
	n := a.Rows
	diag, err := extractDiag(a)
	if err != nil {
		return nil, err
	}
	x := NewVector(n)
	smp := opts.sampler()
	var lastDelta float64
	for iter := 0; iter < opts.MaxIter; iter++ {
		var maxDelta, maxAbs float64
		for i := 0; i < n; i++ {
			s := b[i]
			cols, vals := a.Row(i)
			for k, j := range cols {
				if j != i {
					s -= vals[k] * x[j]
				}
			}
			nv := s / diag[i]
			if d := math.Abs(nv - x[i]); d > maxDelta {
				maxDelta = d
			}
			if a := math.Abs(nv); a > maxAbs {
				maxAbs = a
			}
			x[i] = nv
		}
		lastDelta = maxDelta
		smp.observe(iter+1, maxDelta)
		if maxDelta <= opts.Tol*(1+maxAbs) {
			if !x.AllFinite() {
				return nil, ErrSingular
			}
			opts.report(iter+1, maxDelta, true, smp)
			return x, nil
		}
	}
	opts.report(opts.MaxIter, lastDelta, false, smp)
	return nil, &ConvergenceError{Method: "gauss-seidel", Iterations: opts.MaxIter, Residual: lastDelta, Tol: opts.Tol}
}

func extractDiag(a *CSR) (Vector, error) {
	diag := NewVector(a.Rows)
	for i := 0; i < a.Rows; i++ {
		d := a.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("linalg: zero diagonal at row %d: %w", i, ErrSingular)
		}
		diag[i] = d
	}
	return diag, nil
}

// PowerStationary computes the stationary distribution π = π·P of a row-
// stochastic CSR matrix P by power iteration starting from the uniform
// distribution. The chain must have a unique stationary distribution that
// power iteration can reach (e.g. the uniformised DTMC of an irreducible
// CTMC, which is aperiodic by construction).
func PowerStationary(p *CSR, opts IterOpts) (Vector, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("%w: PowerStationary needs square matrix, got %dx%d", ErrDimension, p.Rows, p.Cols)
	}
	opts = opts.withDefaults()
	n := p.Rows
	x := NewVector(n)
	x.Fill(1 / float64(n))
	next := NewVector(n)
	smp := opts.sampler()
	var lastDelta float64
	for iter := 0; iter < opts.MaxIter; iter++ {
		if _, err := p.VecMul(x, next); err != nil {
			return nil, err
		}
		next.Normalize1()
		d := x.MaxDiff(next)
		x, next = next, x
		lastDelta = d
		smp.observe(iter+1, d)
		if d < opts.Tol {
			if !x.AllFinite() {
				return nil, ErrSingular
			}
			opts.report(iter+1, d, true, smp)
			return x, nil
		}
	}
	opts.report(opts.MaxIter, lastDelta, false, smp)
	return nil, &ConvergenceError{Method: "power", Iterations: opts.MaxIter, Residual: lastDelta, Tol: opts.Tol}
}
