package linalg

import (
	"errors"
	"math/rand"
	"testing"
)

func diagonallyDominantCSR(r *rand.Rand, n int) *CSR {
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if r.Float64() < 0.4 {
				v := r.Float64()*2 - 1
				coo.Add(i, j, v)
				if v < 0 {
					rowSum -= v
				} else {
					rowSum += v
				}
			}
		}
		coo.Add(i, i, rowSum+1+r.Float64())
	}
	return coo.ToCSR()
}

func TestJacobiAndGaussSeidelAgreeWithDirect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(15)
		a := diagonallyDominantCSR(r, n)
		b := NewVector(n)
		for i := range b {
			b[i] = r.Float64()*10 - 5
		}
		direct, err := SolveDense(a.ToDense(), b)
		if err != nil {
			t.Fatal(err)
		}
		jac, err := Jacobi(a, b, IterOpts{})
		if err != nil {
			t.Fatalf("Jacobi: %v", err)
		}
		gs, err := GaussSeidel(a, b, IterOpts{})
		if err != nil {
			t.Fatalf("GaussSeidel: %v", err)
		}
		if jac.MaxDiff(direct) > 1e-8 {
			t.Fatalf("Jacobi off by %v", jac.MaxDiff(direct))
		}
		if gs.MaxDiff(direct) > 1e-8 {
			t.Fatalf("GaussSeidel off by %v", gs.MaxDiff(direct))
		}
	}
}

func TestIterativeZeroDiagonal(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	a := coo.ToCSR()
	if _, err := Jacobi(a, Vector{1, 1}, IterOpts{}); !errors.Is(err, ErrSingular) {
		t.Fatalf("Jacobi err = %v, want ErrSingular", err)
	}
	if _, err := GaussSeidel(a, Vector{1, 1}, IterOpts{}); !errors.Is(err, ErrSingular) {
		t.Fatalf("GaussSeidel err = %v, want ErrSingular", err)
	}
}

func TestIterativeDimensionErrors(t *testing.T) {
	a := NewCOO(2, 3).ToCSR()
	if _, err := Jacobi(a, Vector{1, 1}, IterOpts{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
	sq := NewCOO(2, 2).ToCSR()
	if _, err := GaussSeidel(sq, Vector{1}, IterOpts{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v", err)
	}
}

func TestIterativeNoConvergence(t *testing.T) {
	// A non-dominant system with a tiny iteration budget.
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, -10)
	coo.Add(1, 0, -10)
	coo.Add(1, 1, 1)
	a := coo.ToCSR()
	if _, err := Jacobi(a, Vector{1, 1}, IterOpts{MaxIter: 5}); !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestConvergenceErrorContext(t *testing.T) {
	// Divergent iteration: the error must carry method, budget and the
	// final (growing) residual, and still unwrap to ErrNoConvergence.
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, -10)
	coo.Add(1, 0, -10)
	coo.Add(1, 1, 1)
	a := coo.ToCSR()
	var stats IterStats
	_, err := GaussSeidel(a, Vector{1, 1}, IterOpts{MaxIter: 7, Stats: &stats})
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *ConvergenceError", err, err)
	}
	if ce.Method != "gauss-seidel" || ce.Iterations != 7 || ce.Residual <= 0 {
		t.Fatalf("incomplete context: %+v", ce)
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("ConvergenceError does not unwrap to ErrNoConvergence")
	}
	if stats.Converged || stats.Iterations != 7 || stats.Residual != ce.Residual {
		t.Fatalf("stats disagree with error: %+v vs %+v", stats, ce)
	}
}

func TestIterStatsOnSuccess(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := diagonallyDominantCSR(r, 10)
	b := NewVector(10)
	for i := range b {
		b[i] = r.Float64()
	}
	for name, solve := range map[string]func() error{
		"jacobi":       func() error { _, err := Jacobi(a, b, IterOpts{Stats: nil}); return err },
		"gauss-seidel": func() error { _, err := GaussSeidel(a, b, IterOpts{Stats: nil}); return err },
	} {
		if err := solve(); err != nil {
			t.Fatalf("%s without stats: %v", name, err)
		}
	}
	var st IterStats
	if _, err := GaussSeidel(a, b, IterOpts{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations <= 0 || st.Iterations >= 100000 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Residual < 0 {
		t.Fatalf("negative residual: %+v", st)
	}
}

func TestPowerStationaryTwoState(t *testing.T) {
	// P = [[0.9, 0.1], [0.2, 0.8]] has stationary (2/3, 1/3).
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 0.9)
	coo.Add(0, 1, 0.1)
	coo.Add(1, 0, 0.2)
	coo.Add(1, 1, 0.8)
	pi, err := PowerStationary(coo.ToCSR(), IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(pi[0], 2.0/3, 1e-9) || !almostEq(pi[1], 1.0/3, 1e-9) {
		t.Fatalf("stationary = %v", pi)
	}
}

func TestPowerStationaryInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	n := 12
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		// Random strictly positive rows: irreducible + aperiodic.
		weights := make([]float64, n)
		var sum float64
		for j := range weights {
			weights[j] = r.Float64() + 0.01
			sum += weights[j]
		}
		for j := range weights {
			coo.Add(i, j, weights[j]/sum)
		}
	}
	p := coo.ToCSR()
	pi, err := PowerStationary(p, IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	next, err := p.VecMul(pi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pi.MaxDiff(next) > 1e-9 {
		t.Fatalf("π not invariant: diff %v", pi.MaxDiff(next))
	}
	if !almostEq(pi.Sum(), 1, 1e-9) {
		t.Fatalf("π sums to %v", pi.Sum())
	}
}
