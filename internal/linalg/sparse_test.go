package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCSR(r *rand.Rand, rows, cols int, density float64) *CSR {
	coo := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				coo.Add(i, j, r.Float64()*4-2)
			}
		}
	}
	return coo.ToCSR()
}

func TestCOODuplicatesSummed(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 1.5)
	coo.Add(0, 1, 2.5)
	coo.Add(1, 0, 3)
	m := coo.ToCSR()
	if m.At(0, 1) != 4 {
		t.Fatalf("duplicate not summed: %v", m.At(0, 1))
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("entry lost: %v", m.At(1, 0))
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}

func TestCOOCancellationDropped(t *testing.T) {
	coo := NewCOO(1, 1)
	coo.Add(0, 0, 2)
	coo.Add(0, 0, -2)
	m := coo.ToCSR()
	if m.NNZ() != 0 {
		t.Fatalf("cancelled entry kept, NNZ = %d", m.NNZ())
	}
}

func TestCOOZeroDropped(t *testing.T) {
	coo := NewCOO(1, 1)
	coo.Add(0, 0, 0)
	if coo.NNZ() != 0 {
		t.Fatal("zero entry stored")
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(1, 1).Add(1, 0, 1)
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(r, 5+r.Intn(10), 5+r.Intn(10), 0.3)
		d := m.ToDense()
		v := NewVector(m.Cols)
		for i := range v {
			v[i] = r.Float64()
		}
		sp, err := m.MulVec(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		de, err := d.MulVec(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sp.MaxDiff(de) > 1e-12 {
			t.Fatalf("CSR.MulVec disagrees with dense by %v", sp.MaxDiff(de))
		}
	}
}

func TestCSRVecMulMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(r, 5+r.Intn(10), 5+r.Intn(10), 0.3)
		d := m.ToDense()
		v := NewVector(m.Rows)
		for i := range v {
			v[i] = r.Float64()
		}
		sp, err := m.VecMul(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		de, err := d.VecMul(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sp.MaxDiff(de) > 1e-12 {
			t.Fatalf("CSR.VecMul disagrees with dense by %v", sp.MaxDiff(de))
		}
	}
}

// Property: transposing twice is the identity, and (i,j) of m equals (j,i)
// of mᵀ.
func TestQuickCSRTranspose(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomCSR(r, 1+r.Intn(12), 1+r.Intn(12), 0.4)
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			return false
		}
		mt := m.Transpose()
		for i := 0; i < m.Rows; i++ {
			cols, vals := m.Row(i)
			for k, j := range cols {
				if mt.At(j, i) != vals[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRRowSums(t *testing.T) {
	coo := NewCOO(2, 3)
	coo.Add(0, 0, 1)
	coo.Add(0, 2, 2)
	coo.Add(1, 1, 5)
	m := coo.ToCSR()
	s := m.RowSums()
	if s[0] != 3 || s[1] != 5 {
		t.Fatalf("RowSums = %v", s)
	}
}

func TestCSRScale(t *testing.T) {
	coo := NewCOO(1, 2)
	coo.Add(0, 0, 2)
	coo.Add(0, 1, 4)
	m := coo.ToCSR()
	m.Scale(0.5)
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 {
		t.Fatalf("Scale wrong: %v %v", m.At(0, 0), m.At(0, 1))
	}
}

func TestCSRAtMissing(t *testing.T) {
	m := NewCOO(2, 2).ToCSR()
	if m.At(1, 1) != 0 {
		t.Fatal("missing entry not zero")
	}
}
