package linalg

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// TestTraceSamplingConverged: a converging solve with CollectTrace yields a
// monotone-iteration trace whose final point is the reported result.
func TestTraceSamplingConverged(t *testing.T) {
	a := diagonallyDominantCSR(rand.New(rand.NewSource(21)), 24)
	b := NewVector(24)
	b[0] = 1
	var stats IterStats
	if _, err := Jacobi(a, b, IterOpts{Stats: &stats, CollectTrace: true}); err != nil {
		t.Fatal(err)
	}
	if len(stats.Trace) == 0 {
		t.Fatal("no trace collected")
	}
	for i := 1; i < len(stats.Trace); i++ {
		if stats.Trace[i].Iteration <= stats.Trace[i-1].Iteration {
			t.Fatalf("trace iterations not increasing at %d: %+v", i, stats.Trace)
		}
	}
	last := stats.Trace[len(stats.Trace)-1]
	if last.Iteration != stats.Iterations || last.Residual != stats.Residual {
		t.Fatalf("trace tail %+v != reported stats %+v", last, stats)
	}
}

// TestTraceSamplingIsLogSpaced: 10000 iterations must produce tens of
// points, not thousands — the property that makes always-on collection in
// RobustSolve affordable.
func TestTraceSamplingIsLogSpaced(t *testing.T) {
	// A barely-contractive system (Jacobi iteration-matrix spectral radius
	// 0.9999): converging to 1e-12 would need ~276k sweeps, so a 10000-sweep
	// budget always runs out — without overflow.
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, -0.9999)
	coo.Add(1, 0, -0.9999)
	coo.Add(1, 1, 1)
	var stats IterStats
	_, err := Jacobi(coo.ToCSR(), Vector{1, 0}, IterOpts{MaxIter: 10000, Stats: &stats, CollectTrace: true})
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want ConvergenceError", err)
	}
	if n := len(stats.Trace); n < 10 || n > 64 {
		t.Fatalf("trace has %d points for 10000 iterations, want log-spaced 10..64", n)
	}
	if last := stats.Trace[len(stats.Trace)-1]; last.Iteration != 10000 {
		t.Fatalf("trace tail iteration = %d, want 10000", last.Iteration)
	}
}

// TestTraceDisabledByDefault: without CollectTrace the stats carry no trace
// (and the loops pay no sampling cost).
func TestTraceDisabledByDefault(t *testing.T) {
	a := diagonallyDominantCSR(rand.New(rand.NewSource(25)), 8)
	var stats IterStats
	if _, err := GaussSeidel(a, NewVector(8), IterOpts{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Trace != nil {
		t.Fatalf("trace collected without CollectTrace: %+v", stats.Trace)
	}
}

// TestDetectStagnation covers the detector's verdicts on synthetic curves.
func TestDetectStagnation(t *testing.T) {
	mk := func(residuals ...float64) []obs.ResidualPoint {
		pts := make([]obs.ResidualPoint, len(residuals))
		for i, r := range residuals {
			pts[i] = obs.ResidualPoint{Iteration: i + 1, Residual: r}
		}
		return pts
	}
	cases := []struct {
		name  string
		trace []obs.ResidualPoint
		want  bool
	}{
		{"healthy", mk(1, 1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12), false},
		{"plateau", mk(1, 1e-2, 1e-9, 1e-9, 1e-9, 1e-9, 1e-9, 1e-9), true},
		{"diverging", mk(1, 2, 4, 8, 16, 32, 64), true},
		{"overflowed", mk(1, 1e100, 1e200, math.Inf(1), math.Inf(1), math.NaN(), math.NaN()), true},
		{"too-short", mk(1, 1, 1), false},
	}
	for _, tc := range cases {
		sg, got := DetectStagnation(tc.trace, 0, 0)
		if got != tc.want {
			t.Errorf("%s: detected = %v, want %v (%+v)", tc.name, got, tc.want, sg)
		}
		if got && sg.ToIteration != tc.trace[len(tc.trace)-1].Iteration {
			t.Errorf("%s: window end %d, want trace tail", tc.name, sg.ToIteration)
		}
	}
}

// TestRobustSolveAttemptTraces is the tentpole's forced-divergence
// acceptance test at the linalg layer: a genuinely diverging system (not
// fault injection, which never runs a solver) fails both iterative steps,
// each failed attempt carries its sampled convergence curve plus a detected
// stagnation, and the stagnation events land in the black box *before* the
// fallback attempt fires.
func TestRobustSolveAttemptTraces(t *testing.T) {
	// A 2x2 system that is far from diagonally dominant: both Jacobi and
	// Gauss–Seidel diverge geometrically, while dense elimination solves it
	// exactly (det = -5).
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, 2)
	coo.Add(1, 0, 3)
	coo.Add(1, 1, 1)
	a := coo.ToCSR()
	b := Vector{1, 1}

	flight := obs.NewFlight(64)
	tracer := obs.NewTracer(obs.MultiSink{flight}, false)
	rec := &obs.AttemptRecorder{}
	ctx, root := tracer.StartSpan(context.Background(), "test")
	defer root.End()
	ctx = obs.WithAttempts(ctx, rec)
	ctx = obs.WithFlight(ctx, flight)

	var stats RobustStats
	x, err := RobustSolve(ctx, a, b, RobustOpts{
		// 100 sweeps diverge to ~6^100 without overflowing to Inf.
		Opts:  IterOpts{MaxIter: 100},
		Stats: &stats,
	})
	if err != nil {
		t.Fatalf("RobustSolve: %v", err)
	}
	if stats.Method != MethodDense || len(stats.Attempts) != 3 {
		t.Fatalf("method %q with %d attempts, want dense after 3", stats.Method, len(stats.Attempts))
	}
	// x = A⁻¹·(1,1): exact solution (0.2, 0.4).
	if math.Abs(x[0]-0.2) > 1e-9 || math.Abs(x[1]-0.4) > 1e-9 {
		t.Fatalf("x = %v, want (0.2, 0.4)", x)
	}
	for _, at := range stats.Attempts[:2] {
		if len(at.Trace) < StagnationWindow {
			t.Fatalf("%s attempt trace has %d points, want >= %d", at.Method, len(at.Trace), StagnationWindow)
		}
		if at.Stagnation == nil {
			t.Fatalf("%s attempt has no detected stagnation: %+v", at.Method, at)
		}
		if at.Stagnation.Improvement >= 1 {
			t.Errorf("%s improvement = %v, want < 1 (diverging)", at.Method, at.Stagnation.Improvement)
		}
	}

	// The recorded obs attempts must carry the same curves and residuals, so
	// they reach job manifests unchanged.
	attempts := rec.Attempts()
	if len(attempts) != 3 {
		t.Fatalf("recorded %d attempts, want 3", len(attempts))
	}
	for _, at := range attempts[:2] {
		if len(at.Trace) == 0 || at.Residual == 0 {
			t.Fatalf("recorded attempt missing trace/residual: %+v", at)
		}
	}

	// Black-box ordering: each stagnation event precedes the attempt record
	// of the *next* (fallback) solver.
	events := flight.Snapshot()
	seqOfAttempt := map[float64]uint64{} // try number -> seq
	var stagnationSeqs []uint64
	for _, ev := range events {
		switch {
		case ev.Kind == "attempt" && ev.Name == "solver":
			seqOfAttempt[ev.Value] = ev.Seq
		case ev.Kind == "log" && ev.Name == "solver.stagnation":
			stagnationSeqs = append(stagnationSeqs, ev.Seq)
		}
	}
	if len(stagnationSeqs) != 2 {
		t.Fatalf("flight has %d stagnation events, want 2: %+v", len(stagnationSeqs), events)
	}
	if stagnationSeqs[0] >= seqOfAttempt[2] {
		t.Errorf("first stagnation (seq %d) not before fallback attempt 2 (seq %d)", stagnationSeqs[0], seqOfAttempt[2])
	}
	if stagnationSeqs[1] >= seqOfAttempt[3] {
		t.Errorf("second stagnation (seq %d) not before fallback attempt 3 (seq %d)", stagnationSeqs[1], seqOfAttempt[3])
	}
}
