package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestVectorBasics(t *testing.T) {
	v := Vector{1, -2, 3}
	w := Vector{4, 5, -6}
	if got := v.Dot(w); got != 1*4+-2*5+3*-6 {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Sum(); got != 2 {
		t.Fatalf("Sum = %v", got)
	}
	if got := v.Norm1(); got != 6 {
		t.Fatalf("Norm1 = %v", got)
	}
	if got := v.NormInf(); got != 3 {
		t.Fatalf("NormInf = %v", got)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestVectorScaleAddScaled(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Scale(2)
	if v[2] != 6 {
		t.Fatalf("Scale: %v", v)
	}
	v.AddScaled(0.5, Vector{2, 2, 2})
	want := Vector{3, 5, 7}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("AddScaled: %v", v)
		}
	}
}

func TestVectorNormalize1(t *testing.T) {
	v := Vector{1, 3}
	s := v.Normalize1()
	if s != 4 {
		t.Fatalf("returned sum %v", s)
	}
	if !almostEq(v.Sum(), 1, 1e-15) {
		t.Fatalf("not normalised: %v", v)
	}
	// Zero vector untouched.
	z := Vector{0, 0}
	z.Normalize1()
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero vector modified: %v", z)
	}
}

func TestVectorMaxDiff(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{1, 5, 3}
	if d := a.MaxDiff(b); d != 3 {
		t.Fatalf("MaxDiff = %v", d)
	}
}

func TestVectorAllFinite(t *testing.T) {
	if !(Vector{1, 2}).AllFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).AllFinite() {
		t.Fatal("NaN not detected")
	}
	if (Vector{math.Inf(1)}).AllFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(Vector{1}).Dot(Vector{1, 2})
}

// Property: normalising any vector with positive finite sum yields sum 1.
func TestQuickNormalize(t *testing.T) {
	f := func(raw []float64) bool {
		v := make(Vector, len(raw))
		var sum float64
		for i, x := range raw {
			x = math.Abs(math.Mod(x, 1e6)) // keep magnitudes sane
			if math.IsNaN(x) {
				x = 0
			}
			v[i] = x
			sum += x
		}
		if sum <= 0 {
			return true
		}
		v.Normalize1()
		return almostEq(v.Sum(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
