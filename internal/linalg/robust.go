package linalg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Solver method names, used in fallback chains and attempt records.
const (
	MethodGaussSeidel = "gauss-seidel"
	MethodJacobi      = "jacobi"
	MethodDense       = "dense"
)

// FallbackStep is one stage of a RobustSolve chain: a method plus budget
// relaxations applied relative to the base IterOpts.
type FallbackStep struct {
	// Method selects the solver (MethodGaussSeidel, MethodJacobi,
	// MethodDense).
	Method string
	// IterFactor multiplies the base MaxIter (values ≤ 1 keep it).
	IterFactor int
	// TolFactor multiplies the base Tol (values ≤ 1 keep it).
	TolFactor float64
}

// DefaultFallbackChain is the escalation RobustSolve uses when none is
// configured: the fast sweep first, then Jacobi with a doubled iteration
// budget and a relaxed tolerance (Jacobi converges on some systems where
// the Gauss–Seidel sweep order cycles), and finally dense Gaussian
// elimination, which does not iterate at all but only fits small systems.
func DefaultFallbackChain() []FallbackStep {
	return []FallbackStep{
		{Method: MethodGaussSeidel},
		{Method: MethodJacobi, IterFactor: 2, TolFactor: 10},
		{Method: MethodDense},
	}
}

// DefaultDenseLimit bounds the system size eligible for the dense fallback
// (an n×n expansion; 1024² floats ≈ 8 MB).
const DefaultDenseLimit = 1024

// RobustOpts configures RobustSolve.
type RobustOpts struct {
	// Opts is the base iterative budget; chain steps relax it.
	Opts IterOpts
	// Chain overrides DefaultFallbackChain.
	Chain []FallbackStep
	// DenseLimit overrides DefaultDenseLimit.
	DenseLimit int
	// Stats, when non-nil, receives the attempt history.
	Stats *RobustStats
}

// SolveAttempt reports one executed step of a fallback chain.
type SolveAttempt struct {
	// Method is the solver that ran.
	Method string
	// Iterations and Residual report what the iterative solver did (zero
	// for the dense method).
	Iterations int
	Residual   float64
	// Trace is the attempt's sampled convergence curve (empty for the dense
	// method and for injected failures, which never run a solver).
	Trace []obs.ResidualPoint
	// Stagnation is the detected residual plateau, when the attempt failed
	// and its trace shows one.
	Stagnation *Stagnation
	// Err is the step's failure, nil on success.
	Err error
	// Injected marks a failure synthesised by fault injection
	// (fault.PointSolverDiverge) rather than a real solve.
	Injected bool
}

// RobustStats is RobustSolve's attempt history.
type RobustStats struct {
	// Attempts lists the executed steps in order.
	Attempts []SolveAttempt
	// Method is the step that produced the returned solution (empty on
	// failure).
	Method string
}

// RobustSolve solves A·x = b through a fallback chain: each step runs an
// iterative method under (possibly relaxed) budgets, and a step failing
// with a *ConvergenceError escalates to the next; any other error (singular
// matrix, dimension mismatch) aborts immediately since no amount of
// escalation repairs it. The dense step is skipped for systems larger than
// DenseLimit. Every executed step is recorded in opts.Stats and in the
// context's obs.AttemptRecorder, so run manifests show which solvers were
// tried. The fault.PointSolverDiverge injection point, when armed, replaces
// a step's real solve with a synthetic convergence failure.
func RobustSolve(ctx context.Context, a *CSR, b Vector, opts RobustOpts) (Vector, error) {
	chain := opts.Chain
	if len(chain) == 0 {
		chain = DefaultFallbackChain()
	}
	denseLimit := opts.DenseLimit
	if denseLimit <= 0 {
		denseLimit = DefaultDenseLimit
	}
	base := opts.Opts.withDefaults()
	ctx, sp := obs.Start(ctx, "linalg.robust_solve")
	defer sp.End()
	var lastErr error
	try := 0
	for _, step := range chain {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if step.Method == MethodDense && a.Rows > denseLimit {
			continue
		}
		try++
		stepOpts := base
		if step.IterFactor > 1 {
			stepOpts.MaxIter = base.MaxIter * step.IterFactor
		}
		if step.TolFactor > 1 {
			stepOpts.Tol = base.Tol * step.TolFactor
		}
		var stats IterStats
		stepOpts.Stats = &stats
		// Convergence curves are always collected here: the chain only runs
		// once per analysis and the log-spaced trace is O(log MaxIter) points,
		// so the post-mortem value outweighs the cost.
		stepOpts.CollectTrace = true
		start := time.Now()
		var (
			x        Vector
			err      error
			injected bool
		)
		if fault.Should(fault.PointSolverDiverge) {
			injected = true
			err = &ConvergenceError{Method: step.Method, Iterations: stepOpts.MaxIter, Residual: math.Inf(1), Tol: stepOpts.Tol}
		} else {
			switch step.Method {
			case MethodGaussSeidel:
				x, err = GaussSeidel(a, b, stepOpts)
			case MethodJacobi:
				x, err = Jacobi(a, b, stepOpts)
			case MethodDense:
				x, err = SolveDense(a.ToDense(), b)
			default:
				return nil, fmt.Errorf("linalg: unknown fallback method %q", step.Method)
			}
		}
		attempt := SolveAttempt{
			Method:     step.Method,
			Iterations: stats.Iterations,
			Residual:   stats.Residual,
			Trace:      stats.Trace,
			Err:        err,
			Injected:   injected,
		}
		// Diagnose a failed iterative attempt before anything else reacts to
		// it: a residual plateau (or divergence) in the trace becomes a
		// structured event ahead of the attempt record and the fallback that
		// follows, so a trace reader sees "stagnated at 3e-9 from sweep 41"
		// before "escalated to jacobi".
		if err != nil && !injected {
			if sg, ok := DetectStagnation(stats.Trace, 0, 0); ok {
				attempt.Stagnation = &sg
				obs.Count(ctx, "solver.stagnation", 1)
				obs.LogAttrs(ctx, "solver.stagnation",
					obs.Attr{Key: "method", Kind: obs.KindString, Str: step.Method},
					obs.Attr{Key: "from_iteration", Kind: obs.KindInt, Int: int64(sg.FromIteration)},
					obs.Attr{Key: "to_iteration", Kind: obs.KindInt, Int: int64(sg.ToIteration)},
					obs.Attr{Key: "residual", Kind: obs.KindFloat, Flt: sg.ToResidual},
					obs.Attr{Key: "improvement", Kind: obs.KindFloat, Flt: sg.Improvement},
				)
			}
		}
		if opts.Stats != nil {
			opts.Stats.Attempts = append(opts.Stats.Attempts, attempt)
		}
		rec := obs.Attempt{
			Stage:      "solver",
			Try:        try,
			Method:     step.Method,
			Outcome:    obs.AttemptOK,
			Iterations: stats.Iterations,
			Seconds:    time.Since(start).Seconds(),
			Residual:   stats.Residual,
			Trace:      stats.Trace,
		}
		if err != nil {
			rec.Outcome = obs.AttemptError
			if injected {
				rec.Outcome = obs.AttemptInjected
			}
			rec.Error = err.Error()
		}
		obs.RecordAttempt(ctx, rec)
		if err == nil {
			if opts.Stats != nil {
				opts.Stats.Method = step.Method
			}
			sp.Str("method", step.Method)
			sp.Int("attempts", int64(try))
			sp.Int("iterations", int64(stats.Iterations))
			sp.Float("residual", stats.Residual)
			sp.Int("trace_points", int64(len(stats.Trace)))
			return x, nil
		}
		var ce *ConvergenceError
		if !errors.As(err, &ce) {
			return nil, err
		}
		lastErr = err
	}
	if lastErr == nil {
		return nil, fmt.Errorf("linalg: fallback chain has no applicable step for a %dx%d system", a.Rows, a.Cols)
	}
	return nil, fmt.Errorf("linalg: fallback chain exhausted after %d attempts: %w", try, lastErr)
}
