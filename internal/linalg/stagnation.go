package linalg

import "repro/internal/obs"

// Stagnation detection turns a sampled convergence curve into an early,
// structured diagnosis: "the residual stopped improving at sweep N" is
// actionable (escalate now, pick a different method, report the plateau
// level), whereas the eventual ConvergenceError only says the budget ran
// out. RobustSolve runs the detector on every failed iterative attempt and
// emits the result as a structured event before the fallback fires.

// Stagnation describes a residual plateau (or divergence) over the tail of
// a convergence trace.
type Stagnation struct {
	// FromIteration..ToIteration is the sampled window that shows no
	// meaningful progress.
	FromIteration int `json:"from_iteration"`
	ToIteration   int `json:"to_iteration"`
	// FromResidual and ToResidual are the residuals bounding the window.
	FromResidual float64 `json:"from_residual"`
	ToResidual   float64 `json:"to_residual"`
	// Improvement is FromResidual/ToResidual over the window: ~1 means a
	// plateau, < 1 means the solve is diverging, NaN means the residual
	// degenerated (overflow).
	Improvement float64 `json:"improvement"`
}

// Defaults for DetectStagnation: the window is in sampled points (the
// sampler's ~1.25× stride makes 6 points span roughly a 3× range of
// iterations), and a healthy solve should improve its residual by at least
// the minimum factor across that span.
const (
	StagnationWindow         = 6
	StagnationMinImprovement = 2.0
)

// DetectStagnation reports whether the tail of trace shows a residual
// plateau: across the last window sampled points the residual improved by
// less than minImprovement (a factor; values ≤ 0 select the defaults).
// Divergence (growing, infinite or NaN residuals) counts as stagnation —
// in both cases the iterations are no longer buying accuracy.
func DetectStagnation(trace []obs.ResidualPoint, window int, minImprovement float64) (Stagnation, bool) {
	if window <= 1 {
		window = StagnationWindow
	}
	if minImprovement <= 0 {
		minImprovement = StagnationMinImprovement
	}
	if len(trace) < window {
		return Stagnation{}, false
	}
	first := trace[len(trace)-window]
	last := trace[len(trace)-1]
	sg := Stagnation{
		FromIteration: first.Iteration,
		ToIteration:   last.Iteration,
		FromResidual:  first.Residual,
		ToResidual:    last.Residual,
		Improvement:   first.Residual / last.Residual,
	}
	// A NaN improvement (0/0 or Inf/Inf residuals) fails this comparison and
	// is therefore reported as stagnation, as is any ratio below the bar.
	if sg.Improvement >= minImprovement {
		return Stagnation{}, false
	}
	return sg, true
}
