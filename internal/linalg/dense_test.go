package linalg

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDenseMul(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := DenseFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestDenseMulDimensionError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestDenseMulVecAndVecMul(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mv, err := a.MulVec(Vector{1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mv[0] != 6 || mv[1] != 15 {
		t.Fatalf("MulVec = %v", mv)
	}
	vm, err := a.VecMul(Vector{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vm[0] != 5 || vm[1] != 7 || vm[2] != 9 {
		t.Fatalf("VecMul = %v", vm)
	}
}

func TestDenseTranspose(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", at)
	}
}

func TestIdentity(t *testing.T) {
	i3 := Identity(3)
	a := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	c, err := a.Mul(i3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Data {
		if c.Data[k] != a.Data[k] {
			t.Fatal("A·I != A")
		}
	}
}

func TestSolveDense(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3
	a := DenseFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveDense(a, Vector{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("solution %v", x)
	}
}

func TestSolveDenseNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position forces a row swap.
	a := DenseFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveDense(a, Vector{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("solution %v", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveDense(a, Vector{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDenseRectangularRejected(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := SolveDense(a, Vector{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

// Property: for random well-conditioned systems, A·x == b after solving.
func TestQuickSolveDenseResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + r.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := r.Float64()*2 - 1
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			// Make diagonally dominant so the system is well conditioned.
			a.Add(i, i, rowSum+1)
		}
		b := NewVector(n)
		for i := range b {
			b[i] = r.Float64()*10 - 5
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(x, nil)
		if err != nil {
			return false
		}
		return ax.MaxDiff(b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseNormInf(t *testing.T) {
	a := DenseFromRows([][]float64{{1, -2}, {3, 4}})
	if got := a.NormInf(); got != 7 {
		t.Fatalf("NormInf = %v", got)
	}
}

func TestDenseAddMat(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}})
	b := DenseFromRows([][]float64{{10, 20}})
	if err := a.AddMat(0.5, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 6 || a.At(0, 1) != 12 {
		t.Fatalf("AddMat: %v", a)
	}
	if err := a.AddMat(1, NewDense(2, 2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestDenseScaleAndString(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}})
	a.Scale(3)
	if a.At(0, 1) != 6 {
		t.Fatalf("Scale: %v", a)
	}
	s := a.String()
	if !strings.Contains(s, "3") || !strings.Contains(s, "6") {
		t.Fatalf("String = %q", s)
	}
}
