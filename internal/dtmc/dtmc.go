// Package dtmc implements discrete-time Markov chains: transient step
// distributions, stationary distributions and unbounded reachability
// probabilities. The CTMC engine reduces its computations to these
// primitives via uniformisation and the embedded chain.
package dtmc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// ErrNotStochastic reports a transition matrix whose rows do not sum to one.
var ErrNotStochastic = errors.New("dtmc: transition matrix rows must sum to 1")

// ErrBadDistribution reports an initial distribution that is not a
// probability distribution over the state space.
var ErrBadDistribution = errors.New("dtmc: initial distribution invalid")

// Chain is a finite DTMC with transition matrix P (row-stochastic CSR).
type Chain struct {
	P *linalg.CSR
}

// New validates P and wraps it in a Chain. Rows must sum to 1 within tol
// (absorbing states must carry an explicit self-loop).
func New(p *linalg.CSR, tol float64) (*Chain, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("dtmc: transition matrix must be square, got %dx%d", p.Rows, p.Cols)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	for i, s := range p.RowSums() {
		if math.Abs(s-1) > tol {
			return nil, fmt.Errorf("%w: row %d sums to %v", ErrNotStochastic, i, s)
		}
	}
	for _, v := range p.Val {
		if v < 0 {
			return nil, fmt.Errorf("%w: negative transition probability %v", ErrNotStochastic, v)
		}
	}
	return &Chain{P: p}, nil
}

// N returns the number of states.
func (c *Chain) N() int { return c.P.Rows }

// Step advances a distribution one step: dst = pi·P.
func (c *Chain) Step(pi, dst linalg.Vector) (linalg.Vector, error) {
	return c.P.VecMul(pi, dst)
}

// Transient returns the distribution after n steps from init.
func (c *Chain) Transient(init linalg.Vector, n int) (linalg.Vector, error) {
	if err := c.checkDist(init); err != nil {
		return nil, err
	}
	cur := init.Clone()
	next := linalg.NewVector(c.N())
	for k := 0; k < n; k++ {
		if _, err := c.P.VecMul(cur, next); err != nil {
			return nil, err
		}
		cur, next = next, cur
	}
	return cur, nil
}

// Digraph returns the underlying transition digraph (edges with positive
// probability).
func (c *Chain) Digraph() *graph.Digraph {
	g := graph.New(c.N())
	for i := 0; i < c.N(); i++ {
		cols, vals := c.P.Row(i)
		for k, j := range cols {
			if vals[k] > 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Reachability computes, for every state, the probability of eventually
// reaching the target set. It performs the standard qualitative
// precomputations first — prob-0 states via backward reachability, prob-1
// states via bottom-SCC analysis (a DTMC reaches the target almost surely
// iff it cannot reach a BSCC disjoint from the target) — and then solves
// the linear system x = P·x + b restricted to the genuinely fractional
// states with Gauss–Seidel. Without the prob-1 step, probabilities
// converging to 1 through rare escapes would need iteration counts inverse
// in the escape probability.
func (c *Chain) Reachability(target []bool, opts linalg.IterOpts) (linalg.Vector, error) {
	n := c.N()
	if len(target) != n {
		return nil, fmt.Errorf("dtmc: target mask length %d, want %d", len(target), n)
	}
	var targets []int
	for i, t := range target {
		if t {
			targets = append(targets, i)
		}
	}
	x := linalg.NewVector(n)
	if len(targets) == 0 {
		return x, nil
	}
	g := c.Digraph()
	canReach := g.CanReach(targets)
	// Prob-1: states that can reach the target but cannot reach any "bad"
	// BSCC (one containing no target state) hit the target almost surely.
	_, bsccs := g.BSCCs()
	var badStates []int
	for _, b := range bsccs {
		bad := true
		for _, s := range b {
			if target[s] {
				bad = false
				break
			}
		}
		if bad {
			badStates = append(badStates, b...)
		}
	}
	var canReachBad []bool
	if len(badStates) > 0 {
		canReachBad = g.CanReach(badStates)
	} else {
		canReachBad = make([]bool, n)
	}
	idx := make([]int, n) // state -> unknown index, -1 if known
	var unknowns []int
	for i := 0; i < n; i++ {
		switch {
		case target[i]:
			x[i] = 1
			idx[i] = -1
		case !canReach[i]:
			idx[i] = -1
		case !canReachBad[i]:
			x[i] = 1 // almost-sure: no escape route exists
			idx[i] = -1
		default:
			idx[i] = len(unknowns)
			unknowns = append(unknowns, i)
		}
	}
	if len(unknowns) == 0 {
		return x, nil
	}
	// Build (I - P_uu)·y = P_u·x_known where u are unknowns and x_known is
	// 1 on target and almost-sure states.
	coo := linalg.NewCOO(len(unknowns), len(unknowns))
	b := linalg.NewVector(len(unknowns))
	for ui, i := range unknowns {
		coo.Add(ui, ui, 1)
		cols, vals := c.P.Row(i)
		for k, j := range cols {
			p := vals[k]
			if p == 0 {
				continue
			}
			if uj := idx[j]; uj >= 0 {
				coo.Add(ui, uj, -p)
			} else if x[j] == 1 {
				b[ui] += p
			}
		}
	}
	y, err := linalg.GaussSeidel(coo.ToCSR(), b, opts)
	if err != nil {
		return nil, fmt.Errorf("dtmc: reachability solve: %w", err)
	}
	for ui, i := range unknowns {
		x[i] = clamp01(y[ui])
	}
	return x, nil
}

// Stationary computes the stationary distribution of an irreducible,
// aperiodic chain by power iteration. For general chains use the BSCC
// decomposition in the ctmc package.
func (c *Chain) Stationary(opts linalg.IterOpts) (linalg.Vector, error) {
	return linalg.PowerStationary(c.P, opts)
}

// ExpectedVisits computes, for an absorbing chain, the expected number of
// visits to each transient state before absorption, starting from init:
// v = init·(I − P_tt)⁻¹ over the transient states. Absorbing states (and
// states inside bottom SCCs generally) report +Inf only if init can reach
// them with positive probability and they are recurrent — the caller is
// expected to pass a mask of transient states.
func (c *Chain) ExpectedVisits(init linalg.Vector, transient []bool, opts linalg.IterOpts) (linalg.Vector, error) {
	n := c.N()
	if err := c.checkDist(init); err != nil {
		return nil, err
	}
	if len(transient) != n {
		return nil, fmt.Errorf("dtmc: transient mask length %d, want %d", len(transient), n)
	}
	idx := make([]int, n)
	var trans []int
	for i := 0; i < n; i++ {
		if transient[i] {
			idx[i] = len(trans)
			trans = append(trans, i)
		} else {
			idx[i] = -1
		}
	}
	out := linalg.NewVector(n)
	if len(trans) == 0 {
		return out, nil
	}
	// Solve vᵀ(I − P_tt) = initᵀ  ⇔  (I − P_tt)ᵀ v = init_t.
	coo := linalg.NewCOO(len(trans), len(trans))
	b := linalg.NewVector(len(trans))
	for ti, i := range trans {
		coo.Add(ti, ti, 1)
		b[ti] = init[i]
		cols, vals := c.P.Row(i)
		for k, j := range cols {
			if tj := idx[j]; tj >= 0 && vals[k] != 0 {
				coo.Add(tj, ti, -vals[k]) // transposed entry
			}
		}
	}
	v, err := linalg.GaussSeidel(coo.ToCSR(), b, opts)
	if err != nil {
		return nil, fmt.Errorf("dtmc: expected-visits solve: %w", err)
	}
	for ti, i := range trans {
		out[i] = v[ti]
	}
	return out, nil
}

func (c *Chain) checkDist(d linalg.Vector) error {
	if len(d) != c.N() {
		return fmt.Errorf("%w: length %d, want %d", ErrBadDistribution, len(d), c.N())
	}
	var sum float64
	for _, p := range d {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("%w: negative or NaN mass", ErrBadDistribution)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: mass sums to %v", ErrBadDistribution, sum)
	}
	return nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
