package dtmc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func chainFromRows(t *testing.T, rows [][]float64) *Chain {
	t.Helper()
	n := len(rows)
	coo := linalg.NewCOO(n, n)
	for i, r := range rows {
		for j, v := range r {
			coo.Add(i, j, v)
		}
	}
	c, err := New(coo.ToCSR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsNonStochastic(t *testing.T) {
	coo := linalg.NewCOO(2, 2)
	coo.Add(0, 0, 0.5) // row sums to 0.5
	coo.Add(1, 1, 1)
	if _, err := New(coo.ToCSR(), 0); !errors.Is(err, ErrNotStochastic) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewRejectsNonSquare(t *testing.T) {
	if _, err := New(linalg.NewCOO(2, 3).ToCSR(), 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestTransientTwoState(t *testing.T) {
	c := chainFromRows(t, [][]float64{{0.5, 0.5}, {0, 1}})
	pi, err := c.Transient(linalg.Vector{1, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// After 3 steps from state 0: P[still in 0] = 0.125.
	if math.Abs(pi[0]-0.125) > 1e-15 || math.Abs(pi[1]-0.875) > 1e-15 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestTransientZeroSteps(t *testing.T) {
	c := chainFromRows(t, [][]float64{{1, 0}, {0, 1}})
	init := linalg.Vector{0.3, 0.7}
	pi, err := c.Transient(init, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pi.MaxDiff(init) != 0 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestTransientRejectsBadInit(t *testing.T) {
	c := chainFromRows(t, [][]float64{{1, 0}, {0, 1}})
	if _, err := c.Transient(linalg.Vector{0.5, 0.1}, 1); !errors.Is(err, ErrBadDistribution) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Transient(linalg.Vector{1}, 1); !errors.Is(err, ErrBadDistribution) {
		t.Fatalf("err = %v", err)
	}
}

func TestReachabilityGamblersRuin(t *testing.T) {
	// States 0..4, absorbing at 0 and 4, fair coin. P[reach 4 | start i] = i/4.
	rows := [][]float64{
		{1, 0, 0, 0, 0},
		{0.5, 0, 0.5, 0, 0},
		{0, 0.5, 0, 0.5, 0},
		{0, 0, 0.5, 0, 0.5},
		{0, 0, 0, 0, 1},
	}
	c := chainFromRows(t, rows)
	target := []bool{false, false, false, false, true}
	x, err := c.Reachability(target, linalg.IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 4; i++ {
		want := float64(i) / 4
		if math.Abs(x[i]-want) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestReachabilityUnreachableIsZero(t *testing.T) {
	// 2 disconnected absorbing states.
	c := chainFromRows(t, [][]float64{{1, 0}, {0, 1}})
	x, err := c.Reachability([]bool{false, true}, linalg.IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 1 {
		t.Fatalf("x = %v", x)
	}
}

func TestReachabilityEmptyTarget(t *testing.T) {
	c := chainFromRows(t, [][]float64{{1, 0}, {0, 1}})
	x, err := c.Reachability([]bool{false, false}, linalg.IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestReachabilityBadMask(t *testing.T) {
	c := chainFromRows(t, [][]float64{{1, 0}, {0, 1}})
	if _, err := c.Reachability([]bool{true}, linalg.IterOpts{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestStationaryTwoState(t *testing.T) {
	c := chainFromRows(t, [][]float64{{0.9, 0.1}, {0.2, 0.8}})
	pi, err := c.Stationary(linalg.IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-2.0/3) > 1e-9 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestExpectedVisits(t *testing.T) {
	// Transient state 0 loops with p=0.5, exits to absorbing 1 otherwise.
	// Expected visits to 0 starting at 0: 1/(1-0.5) = 2.
	c := chainFromRows(t, [][]float64{{0.5, 0.5}, {0, 1}})
	v, err := c.ExpectedVisits(linalg.Vector{1, 0}, []bool{true, false}, linalg.IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-2) > 1e-9 {
		t.Fatalf("visits = %v", v)
	}
	if v[1] != 0 {
		t.Fatalf("absorbing state got visits: %v", v)
	}
}

func TestExpectedVisitsChain(t *testing.T) {
	// 0 -> 1 -> 2 (absorbing), deterministic: one visit each.
	c := chainFromRows(t, [][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0, 1}})
	v, err := c.ExpectedVisits(linalg.Vector{1, 0, 0}, []bool{true, true, false}, linalg.IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-1) > 1e-9 || math.Abs(v[1]-1) > 1e-9 {
		t.Fatalf("visits = %v", v)
	}
}

// Property: transient distributions remain distributions (non-negative,
// sum 1) for random stochastic matrices.
func TestQuickTransientIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		coo := linalg.NewCOO(n, n)
		for i := 0; i < n; i++ {
			w := make([]float64, n)
			var sum float64
			for j := range w {
				w[j] = r.Float64()
				sum += w[j]
			}
			for j := range w {
				coo.Add(i, j, w[j]/sum)
			}
		}
		c, err := New(coo.ToCSR(), 0)
		if err != nil {
			return false
		}
		init := linalg.NewVector(n)
		init[r.Intn(n)] = 1
		pi, err := c.Transient(init, 1+r.Intn(30))
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: reachability probabilities satisfy the fixed-point equation
// x = P·x on non-target states with x=1 on targets (within solver tolerance).
func TestQuickReachabilityFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(7)
		coo := linalg.NewCOO(n, n)
		for i := 0; i < n; i++ {
			w := make([]float64, n)
			var sum float64
			for j := range w {
				if r.Float64() < 0.5 {
					w[j] = r.Float64()
					sum += w[j]
				}
			}
			if sum == 0 {
				w[i] = 1
				sum = 1
			}
			for j := range w {
				if w[j] > 0 {
					coo.Add(i, j, w[j]/sum)
				}
			}
		}
		c, err := New(coo.ToCSR(), 0)
		if err != nil {
			return false
		}
		target := make([]bool, n)
		target[r.Intn(n)] = true
		x, err := c.Reachability(target, linalg.IterOpts{})
		if err != nil {
			return false
		}
		px, err := c.P.VecMul(x, nil) // note: this is xᵀPᵀ... need P·x
		_ = px
		// Compute P·x directly.
		for i := 0; i < n; i++ {
			if target[i] {
				if x[i] != 1 {
					return false
				}
				continue
			}
			cols, vals := c.P.Row(i)
			var s float64
			for k, j := range cols {
				s += vals[k] * x[j]
			}
			if x[i] > 0 && math.Abs(s-x[i]) > 1e-6 {
				return false
			}
			if x[i] == 0 && s > 1e-9 {
				// prob-0 state must not flow into positive mass
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReachabilityProb1Precomputation: a chain that reaches the target
// almost surely through an arbitrarily rare escape must report exactly 1
// (the qualitative precomputation decides it; no iterative solve could).
func TestReachabilityProb1Precomputation(t *testing.T) {
	// 0 loops to itself with probability 1-ε and escapes to the absorbing
	// target 1 with probability ε.
	eps := 1e-12
	c := chainFromRows(t, [][]float64{
		{1 - eps, eps},
		{0, 1},
	})
	x, err := c.Reachability([]bool{false, true}, linalg.IterOpts{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 {
		t.Fatalf("P = %v, want exactly 1 (prob-1 precomputation)", x[0])
	}
}

// TestReachabilityFractionalWithBadBSCC: with a competing absorbing trap
// the probability is genuinely fractional and must still be solved.
func TestReachabilityFractionalWithBadBSCC(t *testing.T) {
	c := chainFromRows(t, [][]float64{
		{0, 0.3, 0.7},
		{0, 1, 0}, // target
		{0, 0, 1}, // trap (bad BSCC)
	})
	x, err := c.Reachability([]bool{false, true, false}, linalg.IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.3) > 1e-9 || x[1] != 1 || x[2] != 0 {
		t.Fatalf("x = %v", x)
	}
}

// TestReachabilityMixedKnowns: unknown states feeding into almost-sure
// states must receive their mass through the right-hand side.
func TestReachabilityMixedKnowns(t *testing.T) {
	// 3 -> {0 (almost-sure region), 2 (trap)}; 0 loops then surely escapes
	// to target 1.
	c := chainFromRows(t, [][]float64{
		{0.9, 0.1, 0, 0},
		{0, 1, 0, 0}, // target
		{0, 0, 1, 0}, // trap
		{0.5, 0, 0.5, 0},
	})
	x, err := c.Reachability([]bool{false, true, false, false}, linalg.IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 {
		t.Fatalf("x[0] = %v, want 1", x[0])
	}
	if math.Abs(x[3]-0.5) > 1e-9 {
		t.Fatalf("x[3] = %v, want 0.5", x[3])
	}
}

func TestStepAdvancesDistribution(t *testing.T) {
	c := chainFromRows(t, [][]float64{{0, 1}, {1, 0}})
	dst, err := c.Step(linalg.Vector{1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 || dst[1] != 1 {
		t.Fatalf("dst = %v", dst)
	}
}
