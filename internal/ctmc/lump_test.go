package ctmc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// symmetricPair builds a chain with two interchangeable intermediate states:
// 0 → {1, 2} (rate a each), {1, 2} → 3 (rate b each). 1 and 2 are ordinarily
// lumpable.
func symmetricPair(t *testing.T, a, b float64) *Chain {
	t.Helper()
	bd := NewBuilder(4)
	bd.Add(0, 1, a)
	bd.Add(0, 2, a)
	bd.Add(1, 3, b)
	bd.Add(2, 3, b)
	c, err := bd.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLumpMergesSymmetricStates(t *testing.T) {
	c := symmetricPair(t, 2, 3)
	// Signature distinguishes 0, {1,2}, 3.
	l, err := c.Lump([]int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.Quotient.N() != 3 {
		t.Fatalf("quotient size = %d, want 3", l.Quotient.N())
	}
	if l.BlockOf[1] != l.BlockOf[2] {
		t.Fatal("symmetric states not merged")
	}
	// Aggregated rate 0 → {1,2} must be 4.
	b0 := l.BlockOf[0]
	b12 := l.BlockOf[1]
	if got := l.Quotient.Rates.At(b0, b12); got != 4 {
		t.Fatalf("aggregated rate = %v, want 4", got)
	}
}

func TestLumpRespectsSignature(t *testing.T) {
	c := symmetricPair(t, 2, 3)
	// Distinguishing 1 from 2 in the signature must prevent merging.
	l, err := c.Lump([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if l.Quotient.N() != 4 {
		t.Fatalf("quotient size = %d, want 4", l.Quotient.N())
	}
}

func TestLumpRefinesAsymmetricRates(t *testing.T) {
	// Same signature for 1 and 2 but different exit rates: refinement must
	// split them.
	bd := NewBuilder(4)
	bd.Add(0, 1, 2)
	bd.Add(0, 2, 2)
	bd.Add(1, 3, 5)
	bd.Add(2, 3, 7) // differs
	c, err := bd.Build()
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.Lump([]int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.BlockOf[1] == l.BlockOf[2] {
		t.Fatal("states with different rates merged")
	}
}

func TestLumpPreservesTransient(t *testing.T) {
	c := symmetricPair(t, 2, 3)
	sig := []int{0, 1, 1, 2}
	l, err := c.Lump(sig)
	if err != nil {
		t.Fatal(err)
	}
	init := c.DiracInit(0)
	linit, err := l.LumpDistribution(init)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.1, 0.5, 2} {
		full, err := c.Transient(init, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		lumped, err := l.Quotient.Transient(linit, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		// Block marginals must coincide.
		for b, members := range l.Blocks {
			var sum float64
			for _, s := range members {
				sum += full[s]
			}
			if math.Abs(sum-lumped[b]) > 1e-9 {
				t.Fatalf("t=%v block %d: full %v vs lumped %v", tt, b, sum, lumped[b])
			}
		}
	}
}

func TestLumpPreservesCumulativeReward(t *testing.T) {
	c := symmetricPair(t, 2, 3)
	l, err := c.Lump([]int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	reward := linalg.Vector{0, 1, 1, 0.5}
	lr, err := l.LumpReward(reward)
	if err != nil {
		t.Fatal(err)
	}
	init := c.DiracInit(0)
	linit, err := l.LumpDistribution(init)
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.CumulativeReward(init, reward, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	lumped, err := l.Quotient.CumulativeReward(linit, lr, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-lumped) > 1e-9 {
		t.Fatalf("full %v vs lumped %v", full, lumped)
	}
}

func TestLumpMaskNotConstantRejected(t *testing.T) {
	c := symmetricPair(t, 2, 3)
	l, err := c.Lump([]int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LumpMask([]bool{false, true, false, false}); err == nil {
		t.Fatal("non-constant mask accepted")
	}
	if _, err := l.LumpReward(linalg.Vector{0, 1, 2, 0}); err == nil {
		t.Fatal("non-constant reward accepted")
	}
}

func TestLumpExpandVector(t *testing.T) {
	c := symmetricPair(t, 2, 3)
	l, err := c.Lump([]int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.NewVector(l.Quotient.N())
	for b := range v {
		v[b] = float64(b) + 0.5
	}
	x, err := l.ExpandVector(v)
	if err != nil {
		t.Fatal(err)
	}
	if x[1] != x[2] {
		t.Fatal("merged states expanded differently")
	}
	if len(x) != 4 {
		t.Fatalf("len = %d", len(x))
	}
}

func TestLumpSignatureLengthError(t *testing.T) {
	c := symmetricPair(t, 1, 1)
	if _, err := c.Lump([]int{0, 1}); err == nil {
		t.Fatal("bad signature accepted")
	}
}

// Property: for random chains and the trivial signature (all states
// distinct), the quotient is the chain itself; for the uniform signature,
// lumping preserves time-bounded reachability of signature-respecting
// targets.
func TestQuickLumpPreservesReachability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		c := randomChain(r, n, 3)
		// Signature: a random 2-colouring; target = colour 1.
		sig := make([]int, n)
		target := make([]bool, n)
		for i := range sig {
			sig[i] = r.Intn(2)
			target[i] = sig[i] == 1
		}
		l, err := c.Lump(sig)
		if err != nil {
			return false
		}
		lt, err := l.LumpMask(target)
		if err != nil {
			return false
		}
		init := c.DiracInit(r.Intn(n))
		linit, err := l.LumpDistribution(init)
		if err != nil {
			return false
		}
		tt := 0.3 + r.Float64()
		full, err := c.TimeBoundedReachability(init, target, tt, 1e-12)
		if err != nil {
			return false
		}
		lumped, err := l.Quotient.TimeBoundedReachability(linit, lt, tt, 1e-12)
		if err != nil {
			return false
		}
		return math.Abs(full-lumped) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
