package ctmc

import (
	"testing"
)

// midChain builds a 400-state birth–death chain with mildly stiff rates —
// large enough that Transient does real uniformisation work (q·t ≈ 120,
// a few hundred matvecs) but small enough for AllocsPerRun.
func midChain(tb testing.TB) *Chain {
	tb.Helper()
	const n = 400
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.Add(i, i+1, 3.0+float64(i%7))
		b.Add(i+1, i, 12.0)
	}
	c, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// seedTransientAllocs is the allocation count of Chain.Transient on midChain
// measured at the pre-observability seed (commit fa2942e). The no-op obs
// path must not add a single allocation on top of it.
const seedTransientAllocs = 48

// TestTransientNoopObsZeroAllocs pins Transient's allocation count to the
// uninstrumented baseline: with no sink installed (the default), the
// observability layer must contribute exactly zero allocations.
func TestTransientNoopObsZeroAllocs(t *testing.T) {
	c := midChain(t)
	init := c.DiracInit(0)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.Transient(init, 8, 1e-10); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > seedTransientAllocs {
		t.Fatalf("Transient allocates %v times with obs disabled; seed baseline is %d — the no-op sink must be allocation-free",
			allocs, seedTransientAllocs)
	}
}

// BenchmarkTransientObsOff is the committed evidence that the disabled
// instrumentation path is within noise of the seed (compare ns/op against
// BenchmarkTransientObsOn to see the cost of a live sink).
func BenchmarkTransientObsOff(b *testing.B) {
	c := midChain(b)
	init := c.DiracInit(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Transient(init, 8, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}
