package ctmc_test

import (
	"fmt"
	"log"

	"repro/internal/ctmc"
	"repro/internal/linalg"
)

// The paper's worked example (Section 3.3): build the three-state chain,
// compute its stationary distribution and the reward-based exploitable
// time.
func Example() {
	b := ctmc.NewBuilder(3)
	b.Add(0, 1, 2)  // η_3G: telematics exploited
	b.Add(1, 0, 52) // ϕ_3G: telematics patched
	b.Add(1, 2, 2)  // η_mc: message protection broken
	b.Add(2, 1, 52) // ϕ_mc: protection patched
	b.Add(2, 0, 52) // ϕ_3G from the fully-exploited state
	chain, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	pi, err := chain.SteadyState(chain.DiracInit(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stationary: (%.5f, %.6f, %.6f)\n", pi[0], pi[1], pi[2])

	frac, err := chain.ExpectedTimeFraction(chain.DiracInit(0), []bool{false, false, true}, 1, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exploitable within first year: %.4f%%\n", 100*frac)
	// Output:
	// stationary: (0.96296, 0.036338, 0.000699)
	// exploitable within first year: 0.0679%
}

// ExampleChain_TimeBoundedReachability computes the probability of a pure
// birth process firing within one time unit.
func ExampleChain_TimeBoundedReachability() {
	b := ctmc.NewBuilder(2)
	b.Add(0, 1, 1) // rate-1 exponential
	chain, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	p, err := chain.TimeBoundedReachability(chain.DiracInit(0), []bool{false, true}, 1, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P = %.4f\n", p) // 1 - 1/e
	// Output:
	// P = 0.6321
}

// ExampleChain_Lump demonstrates the ordinary-lumping quotient of a chain
// with two symmetric states.
func ExampleChain_Lump() {
	b := ctmc.NewBuilder(4)
	b.Add(0, 1, 2)
	b.Add(0, 2, 2)
	b.Add(1, 3, 5)
	b.Add(2, 3, 5)
	chain, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	l, err := chain.Lump([]int{0, 1, 1, 2}) // 1 and 2 share a signature
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states: %d -> %d\n", chain.N(), l.Quotient.N())

	// The quotient preserves every analysis exactly.
	full, err := chain.CumulativeReward(chain.DiracInit(0), linalg.Vector{0, 1, 1, 0}, 1, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	li, err := l.LumpDistribution(chain.DiracInit(0))
	if err != nil {
		log.Fatal(err)
	}
	lr, err := l.LumpReward(linalg.Vector{0, 1, 1, 0})
	if err != nil {
		log.Fatal(err)
	}
	lumped, err := l.Quotient.CumulativeReward(li, lr, 1, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical: %v\n", fmt.Sprintf("%.10f", full) == fmt.Sprintf("%.10f", lumped))
	// Output:
	// states: 4 -> 3
	// identical: true
}
