// Package ctmc implements finite continuous-time Markov chains and the
// numerical analyses the paper's security methodology needs: transient
// distributions and time-bounded reachability via uniformisation with
// Fox–Glynn Poisson weights, expected cumulative / instantaneous rewards,
// steady-state distributions (with bottom-SCC decomposition for reducible
// chains), and expected reachability rewards on the embedded chain.
//
// Every analysis has two entry points: the legacy form (Transient,
// CumulativeReward, …) and a Context form (TransientContext, …) that
// participates in the internal/obs span tree. The legacy forms delegate with
// context.Background(), so when observability is disabled both cost the
// same — the no-op span path allocates nothing (pinned by a test in
// obs_test.go).
package ctmc

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dtmc"
	"repro/internal/foxglynn"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// ErrBadRate reports a negative, NaN or infinite transition rate.
var ErrBadRate = errors.New("ctmc: transition rates must be finite and non-negative")

// ErrBadTime reports a negative or non-finite time bound.
var ErrBadTime = errors.New("ctmc: time bound must be finite and non-negative")

// ErrBadInit reports an invalid initial distribution.
var ErrBadInit = errors.New("ctmc: initial distribution invalid")

// DefaultAccuracy is the truncation accuracy used for uniformisation when
// the caller passes 0.
const DefaultAccuracy = 1e-10

// Chain is a finite CTMC. Rates holds the off-diagonal transition rates
// R(i,j); the generator is Q = R − diag(exit) with exit_i = Σ_j R(i,j).
type Chain struct {
	Rates *linalg.CSR
	Exit  linalg.Vector
}

// Builder incrementally assembles a CTMC from individual transitions.
type Builder struct {
	n   int
	coo *linalg.COO
	err error
}

// NewBuilder returns a builder for a chain with n states.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, coo: linalg.NewCOO(n, n)}
}

// Add records a transition i→j with the given rate. Self-loops are ignored
// (they are unobservable in a CTMC). Duplicate (i,j) pairs accumulate.
func (b *Builder) Add(i, j int, rate float64) {
	if b.err != nil {
		return
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		b.err = fmt.Errorf("%w: rate(%d→%d) = %v", ErrBadRate, i, j, rate)
		return
	}
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		b.err = fmt.Errorf("ctmc: transition (%d→%d) outside state space of size %d", i, j, b.n)
		return
	}
	if i == j {
		return
	}
	b.coo.Add(i, j, rate)
}

// Build finalises the chain.
func (b *Builder) Build() (*Chain, error) {
	if b.err != nil {
		return nil, b.err
	}
	rates := b.coo.ToCSR()
	return &Chain{Rates: rates, Exit: rates.RowSums()}, nil
}

// N returns the number of states.
func (c *Chain) N() int { return c.Rates.Rows }

// MaxExitRate returns the largest total exit rate, the uniformisation
// constant's lower bound.
func (c *Chain) MaxExitRate() float64 {
	var q float64
	for _, e := range c.Exit {
		if e > q {
			q = e
		}
	}
	return q
}

// Generator returns the full generator matrix Q (including the diagonal) in
// CSR form.
func (c *Chain) Generator() *linalg.CSR {
	coo := linalg.NewCOO(c.N(), c.N())
	for i := 0; i < c.N(); i++ {
		cols, vals := c.Rates.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k])
		}
		if c.Exit[i] != 0 {
			coo.Add(i, i, -c.Exit[i])
		}
	}
	return coo.ToCSR()
}

// Uniformized returns the uniformised DTMC P = I + Q/q and the
// uniformisation rate q = factor · max exit rate. factor ≤ 1 is clamped to
// 1.02 (a strictly larger q guarantees aperiodicity via self-loops). For a
// chain with no transitions at all, q is set to 1 so P = I.
func (c *Chain) Uniformized(factor float64) (*dtmc.Chain, float64, error) {
	if factor < 1.02 {
		factor = 1.02
	}
	q := c.MaxExitRate() * factor
	if q == 0 {
		q = 1
	}
	n := c.N()
	coo := linalg.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cols, vals := c.Rates.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k]/q)
		}
		coo.Add(i, i, 1-c.Exit[i]/q)
	}
	ch, err := dtmc.New(coo.ToCSR(), 1e-9)
	if err != nil {
		return nil, 0, fmt.Errorf("ctmc: uniformisation produced invalid DTMC: %w", err)
	}
	return ch, q, nil
}

// Embedded returns the embedded (jump) DTMC: P(i,j) = R(i,j)/exit_i, with a
// self-loop on absorbing states.
func (c *Chain) Embedded() (*dtmc.Chain, error) {
	n := c.N()
	coo := linalg.NewCOO(n, n)
	for i := 0; i < n; i++ {
		if c.Exit[i] == 0 {
			coo.Add(i, i, 1)
			continue
		}
		cols, vals := c.Rates.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k]/c.Exit[i])
		}
	}
	ch, err := dtmc.New(coo.ToCSR(), 1e-9)
	if err != nil {
		return nil, fmt.Errorf("ctmc: embedded chain invalid: %w", err)
	}
	return ch, nil
}

// Digraph returns the transition digraph (positive-rate edges).
func (c *Chain) Digraph() *graph.Digraph {
	g := graph.New(c.N())
	for i := 0; i < c.N(); i++ {
		cols, vals := c.Rates.Row(i)
		for k, j := range cols {
			if vals[k] > 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// DiracInit returns the point distribution on state s.
func (c *Chain) DiracInit(s int) linalg.Vector {
	d := linalg.NewVector(c.N())
	d[s] = 1
	return d
}

func (c *Chain) checkInit(init linalg.Vector) error {
	if len(init) != c.N() {
		return fmt.Errorf("%w: length %d, want %d", ErrBadInit, len(init), c.N())
	}
	var sum float64
	for _, p := range init {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("%w: negative or NaN mass", ErrBadInit)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: mass sums to %v", ErrBadInit, sum)
	}
	return nil
}

func checkTime(t float64) error {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: %v", ErrBadTime, t)
	}
	return nil
}

// uniSetup records the uniformisation parameters common to all transient
// spans: the rate q and the Fox–Glynn truncation window.
func uniSetup(sp *obs.Span, n int, t, q float64, fg *foxglynn.Result) {
	st := fg.Stats()
	sp.Int("states", int64(n))
	sp.Float("t", t)
	sp.Float("q", q)
	sp.Int("fg_left", int64(st.Left))
	sp.Int("fg_right", int64(st.Right))
	sp.Int("fg_terms", int64(st.Terms))
}

// Transient computes the state distribution at time t from init using
// uniformisation: π(t) = Σ_k Poisson(qt, k) · init·Pᵏ. accuracy ≤ 0 selects
// DefaultAccuracy.
func (c *Chain) Transient(init linalg.Vector, t, accuracy float64) (linalg.Vector, error) {
	return c.TransientContext(context.Background(), init, t, accuracy)
}

// TransientContext is Transient with span propagation: it records the
// uniformisation rate, the Fox–Glynn window and the matrix–vector product
// count on a "ctmc.transient" span.
func (c *Chain) TransientContext(ctx context.Context, init linalg.Vector, t, accuracy float64) (linalg.Vector, error) {
	_, sp := obs.Start(ctx, "ctmc.transient")
	defer sp.End()
	if err := c.checkInit(init); err != nil {
		return nil, err
	}
	if err := checkTime(t); err != nil {
		return nil, err
	}
	if accuracy <= 0 {
		accuracy = DefaultAccuracy
	}
	if t == 0 {
		return init.Clone(), nil
	}
	uni, q, err := c.Uniformized(0)
	if err != nil {
		return nil, err
	}
	fg, err := foxglynn.Compute(q*t, accuracy)
	if err != nil {
		return nil, err
	}
	uniSetup(sp, c.N(), t, q, fg)
	out := linalg.NewVector(c.N())
	cur := init.Clone()
	next := linalg.NewVector(c.N())
	matvecs := 0
	for k := 0; k <= fg.Right; k++ {
		if k >= fg.Left {
			out.AddScaled(fg.Weights[k-fg.Left], cur)
		}
		if k == fg.Right {
			break
		}
		if _, err := uni.Step(cur, next); err != nil {
			return nil, err
		}
		matvecs++
		cur, next = next, cur
	}
	sp.Int("matvecs", int64(matvecs))
	// Guard against truncation drift.
	out.Normalize1()
	return out, nil
}

// CumulativeReward computes the expected reward accumulated over [0, t]:
// E[∫₀ᵗ r(X_s) ds] = Σ_k (1/q)(1 − Σ_{i≤k} γ_i) · (π_k · r), where π_k is
// the distribution of the uniformised DTMC after k steps and γ the
// Poisson(qt) weights. With an indicator reward this is the expected time
// spent in the indicated states — the paper's headline metric.
func (c *Chain) CumulativeReward(init linalg.Vector, reward linalg.Vector, t, accuracy float64) (float64, error) {
	return c.CumulativeRewardContext(context.Background(), init, reward, t, accuracy)
}

// CumulativeRewardContext is CumulativeReward with span propagation
// ("ctmc.cumulative_reward": q, Fox–Glynn window, matvec count).
func (c *Chain) CumulativeRewardContext(ctx context.Context, init linalg.Vector, reward linalg.Vector, t, accuracy float64) (float64, error) {
	_, sp := obs.Start(ctx, "ctmc.cumulative_reward")
	defer sp.End()
	if err := c.checkInit(init); err != nil {
		return 0, err
	}
	if err := checkTime(t); err != nil {
		return 0, err
	}
	if len(reward) != c.N() {
		return 0, fmt.Errorf("ctmc: reward vector length %d, want %d", len(reward), c.N())
	}
	if accuracy <= 0 {
		accuracy = DefaultAccuracy
	}
	if t == 0 {
		return 0, nil
	}
	uni, q, err := c.Uniformized(0)
	if err != nil {
		return 0, err
	}
	fg, err := foxglynn.Compute(q*t, accuracy)
	if err != nil {
		return 0, err
	}
	uniSetup(sp, c.N(), t, q, fg)
	var total float64
	var cumWeight float64 // Σ_{i≤k} γ_i so far
	cur := init.Clone()
	next := linalg.NewVector(c.N())
	matvecs := 0
	for k := 0; k <= fg.Right; k++ {
		if k >= fg.Left {
			cumWeight += fg.Weights[k-fg.Left]
		}
		w := (1 - cumWeight) / q
		if w > 0 {
			total += w * cur.Dot(reward)
		}
		if k == fg.Right {
			break
		}
		if _, err := uni.Step(cur, next); err != nil {
			return 0, err
		}
		matvecs++
		cur, next = next, cur
	}
	sp.Int("matvecs", int64(matvecs))
	return total, nil
}

// InstantaneousReward computes E[r(X_t)] = π(t)·r.
func (c *Chain) InstantaneousReward(init linalg.Vector, reward linalg.Vector, t, accuracy float64) (float64, error) {
	return c.InstantaneousRewardContext(context.Background(), init, reward, t, accuracy)
}

// InstantaneousRewardContext is InstantaneousReward with span propagation.
func (c *Chain) InstantaneousRewardContext(ctx context.Context, init linalg.Vector, reward linalg.Vector, t, accuracy float64) (float64, error) {
	if len(reward) != c.N() {
		return 0, fmt.Errorf("ctmc: reward vector length %d, want %d", len(reward), c.N())
	}
	pi, err := c.TransientContext(ctx, init, t, accuracy)
	if err != nil {
		return 0, err
	}
	return pi.Dot(reward), nil
}

// TimeBoundedReachability computes P[reach a target state within t] from
// init by making the target states absorbing and running transient
// analysis.
func (c *Chain) TimeBoundedReachability(init linalg.Vector, target []bool, t, accuracy float64) (float64, error) {
	return c.TimeBoundedReachabilityContext(context.Background(), init, target, t, accuracy)
}

// TimeBoundedReachabilityContext is TimeBoundedReachability with span
// propagation (the transient solve appears as a child span).
func (c *Chain) TimeBoundedReachabilityContext(ctx context.Context, init linalg.Vector, target []bool, t, accuracy float64) (float64, error) {
	if len(target) != c.N() {
		return 0, fmt.Errorf("ctmc: target mask length %d, want %d", len(target), c.N())
	}
	mod, err := c.Absorbing(target)
	if err != nil {
		return 0, err
	}
	pi, err := mod.TransientContext(ctx, init, t, accuracy)
	if err != nil {
		return 0, err
	}
	var p float64
	for i, isT := range target {
		if isT {
			p += pi[i]
		}
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// BoundedUntil computes P[φ1 U≤t φ2] from init: the probability of reaching
// a φ2 state within t along a path that stays in φ1 states until then.
// Standard construction: φ2 states and ¬φ1∧¬φ2 states are made absorbing;
// the probability is the transient mass in φ2 at time t plus any mass that
// was already absorbed in φ2 (absorbing, so it stays there).
func (c *Chain) BoundedUntil(init linalg.Vector, phi1, phi2 []bool, t, accuracy float64) (float64, error) {
	return c.BoundedUntilContext(context.Background(), init, phi1, phi2, t, accuracy)
}

// BoundedUntilContext is BoundedUntil with span propagation.
func (c *Chain) BoundedUntilContext(ctx context.Context, init linalg.Vector, phi1, phi2 []bool, t, accuracy float64) (float64, error) {
	n := c.N()
	if len(phi1) != n || len(phi2) != n {
		return 0, fmt.Errorf("ctmc: formula mask length mismatch (want %d)", n)
	}
	absorb := make([]bool, n)
	for i := 0; i < n; i++ {
		absorb[i] = phi2[i] || !phi1[i]
	}
	mod, err := c.Absorbing(absorb)
	if err != nil {
		return 0, err
	}
	pi, err := mod.TransientContext(ctx, init, t, accuracy)
	if err != nil {
		return 0, err
	}
	var p float64
	for i := 0; i < n; i++ {
		if phi2[i] {
			p += pi[i]
		}
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// UnboundedReachability computes P[eventually reach target] on the embedded
// DTMC (time plays no role for unbounded reachability).
func (c *Chain) UnboundedReachability(init linalg.Vector, target []bool) (float64, error) {
	if err := c.checkInit(init); err != nil {
		return 0, err
	}
	emb, err := c.Embedded()
	if err != nil {
		return 0, err
	}
	x, err := emb.Reachability(target, linalg.IterOpts{})
	if err != nil {
		return 0, err
	}
	return init.Dot(x), nil
}

// Absorbing returns a copy of the chain in which every state in mask has all
// outgoing transitions removed.
func (c *Chain) Absorbing(mask []bool) (*Chain, error) {
	if len(mask) != c.N() {
		return nil, fmt.Errorf("ctmc: mask length %d, want %d", len(mask), c.N())
	}
	b := NewBuilder(c.N())
	for i := 0; i < c.N(); i++ {
		if mask[i] {
			continue
		}
		cols, vals := c.Rates.Row(i)
		for k, j := range cols {
			b.Add(i, j, vals[k])
		}
	}
	return b.Build()
}
