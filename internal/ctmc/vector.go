package ctmc

import (
	"context"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// IntervalUntilVector computes P_i[φ1 U[t1,t2] φ2] for every state i (the
// per-state form of IntervalUntil; see there for the construction).
func (c *Chain) IntervalUntilVector(phi1, phi2 []bool, t1, t2, accuracy float64) (linalg.Vector, error) {
	return c.IntervalUntilVectorContext(context.Background(), phi1, phi2, t1, t2, accuracy)
}

// IntervalUntilVectorContext is IntervalUntilVector with span propagation.
func (c *Chain) IntervalUntilVectorContext(ctx context.Context, phi1, phi2 []bool, t1, t2, accuracy float64) (linalg.Vector, error) {
	n := c.N()
	if len(phi1) != n || len(phi2) != n {
		return nil, fmt.Errorf("ctmc: formula mask length mismatch (want %d)", n)
	}
	if t1 < 0 || t2 < t1 {
		return nil, fmt.Errorf("%w: interval [%v, %v]", ErrBadTime, t1, t2)
	}
	if t1 == 0 {
		return c.BoundedUntilVectorContext(ctx, phi1, phi2, t2, accuracy)
	}
	y, err := c.BoundedUntilVectorContext(ctx, phi1, phi2, t2-t1, accuracy)
	if err != nil {
		return nil, err
	}
	notPhi1 := make([]bool, n)
	masked := linalg.NewVector(n)
	for i := 0; i < n; i++ {
		notPhi1[i] = !phi1[i]
		if phi1[i] {
			masked[i] = y[i]
		}
	}
	mod, err := c.Absorbing(notPhi1)
	if err != nil {
		return nil, err
	}
	u, err := mod.BackwardTransientContext(ctx, masked, t1, accuracy)
	if err != nil {
		return nil, err
	}
	for i := range u {
		u[i] = clampUnit(u[i])
	}
	return u, nil
}

// NextVector computes P_i[X φ] for every state: the probability that the
// first jump lands in φ (0 for absorbing states).
func (c *Chain) NextVector(phi []bool) (linalg.Vector, error) {
	n := c.N()
	if len(phi) != n {
		return nil, fmt.Errorf("ctmc: formula mask length %d, want %d", len(phi), n)
	}
	out := linalg.NewVector(n)
	for i := 0; i < n; i++ {
		if c.Exit[i] == 0 {
			continue
		}
		cols, vals := c.Rates.Row(i)
		var p float64
		for k, j := range cols {
			if phi[j] {
				p += vals[k]
			}
		}
		out[i] = p / c.Exit[i]
	}
	return out, nil
}

// UnboundedReachabilityVector computes P_i[F target] for every state via
// the embedded chain.
func (c *Chain) UnboundedReachabilityVector(target []bool) (linalg.Vector, error) {
	return c.UnboundedReachabilityVectorContext(context.Background(), target)
}

// UnboundedReachabilityVectorContext is UnboundedReachabilityVector with
// span propagation ("ctmc.unbounded_reach": solver iterations/residual).
func (c *Chain) UnboundedReachabilityVectorContext(ctx context.Context, target []bool) (linalg.Vector, error) {
	_, sp := obs.Start(ctx, "ctmc.unbounded_reach")
	defer sp.End()
	emb, err := c.Embedded()
	if err != nil {
		return nil, err
	}
	var stats linalg.IterStats
	out, err := emb.Reachability(target, linalg.IterOpts{Stats: &stats, CollectTrace: true})
	sp.Int("states", int64(c.N()))
	sp.Int("iterations", int64(stats.Iterations))
	sp.Float("residual", stats.Residual)
	sp.Int("trace_points", int64(len(stats.Trace)))
	return out, err
}

// SteadyStateVector computes, for every state i, the long-run probability
// of being in the masked set when starting from i: the BSCC decomposition
// value_i = Σ_B P_i[absorb into B] · π_B(mask).
func (c *Chain) SteadyStateVector(mask []bool) (linalg.Vector, error) {
	return c.SteadyStateVectorContext(context.Background(), mask)
}

// SteadyStateVectorContext is SteadyStateVector with span propagation.
func (c *Chain) SteadyStateVectorContext(ctx context.Context, mask []bool) (linalg.Vector, error) {
	ctx, sp := obs.Start(ctx, "ctmc.steadystate_vec")
	defer sp.End()
	n := c.N()
	if len(mask) != n {
		return nil, fmt.Errorf("ctmc: mask length %d, want %d", len(mask), n)
	}
	_, bsccs := c.Digraph().BSCCs()
	sp.Int("states", int64(n))
	sp.Int("bsccs", int64(len(bsccs)))
	out := linalg.NewVector(n)
	if len(bsccs) == 1 {
		pi, err := c.stationaryOfClosedSet(ctx, bsccs[0])
		if err != nil {
			return nil, err
		}
		var v float64
		for k, s := range bsccs[0] {
			if mask[s] {
				v += pi[k]
			}
		}
		out.Fill(v)
		return out, nil
	}
	emb, err := c.Embedded()
	if err != nil {
		return nil, err
	}
	for _, b := range bsccs {
		pi, err := c.stationaryOfClosedSet(ctx, b)
		if err != nil {
			return nil, err
		}
		var v float64
		for k, s := range b {
			if mask[s] {
				v += pi[k]
			}
		}
		if v == 0 {
			continue
		}
		target := make([]bool, n)
		for _, s := range b {
			target[s] = true
		}
		reach, err := emb.Reachability(target, linalg.IterOpts{Tol: 1e-10, MaxIter: 500000})
		if err != nil {
			return nil, err
		}
		out.AddScaled(v, reach)
	}
	for i := range out {
		out[i] = clampUnit(out[i])
	}
	return out, nil
}

// ReachabilityRewardVector computes, for every state, the expected reward
// accumulated until first reaching a target state (+Inf where the target is
// reached with probability < 1). One linear solve covers all states.
func (c *Chain) ReachabilityRewardVector(reward linalg.Vector, target []bool) (linalg.Vector, error) {
	return c.ReachabilityRewardVectorContext(context.Background(), reward, target)
}

// ReachabilityRewardVectorContext is ReachabilityRewardVector with span
// propagation.
func (c *Chain) ReachabilityRewardVectorContext(ctx context.Context, reward linalg.Vector, target []bool) (linalg.Vector, error) {
	return c.reachabilityRewardAll(ctx, reward, target)
}
