package ctmc

import (
	"context"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// directSolveThreshold is the BSCC size below which the stationary
// distribution is computed by dense Gaussian elimination instead of power
// iteration on the uniformised chain.
const directSolveThreshold = 256

// SteadyState computes the long-run state distribution from the given
// initial distribution. For an irreducible chain this is the classical
// solution of πQ = 0, Σπ = 1; for a reducible chain the distribution
// decomposes over the bottom strongly connected components:
// π∞(s) = Σ_B P[absorb into B | init] · π_B(s).
func (c *Chain) SteadyState(init linalg.Vector) (linalg.Vector, error) {
	return c.SteadyStateContext(context.Background(), init)
}

// SteadyStateContext is SteadyState with span propagation: a
// "ctmc.steadystate" span recording state and BSCC counts, with one child
// span per iterative balance-equation solve carrying the solver's iteration
// count and final residual.
func (c *Chain) SteadyStateContext(ctx context.Context, init linalg.Vector) (linalg.Vector, error) {
	ctx, sp := obs.Start(ctx, "ctmc.steadystate")
	defer sp.End()
	if err := c.checkInit(init); err != nil {
		return nil, err
	}
	n := c.N()
	_, bsccs := c.Digraph().BSCCs()
	sp.Int("states", int64(n))
	sp.Int("bsccs", int64(len(bsccs)))
	out := linalg.NewVector(n)
	if len(bsccs) == 1 {
		// Irreducible, or a single BSCC that absorbs all probability mass
		// regardless of the initial distribution: the (potentially
		// ill-conditioned) reachability solve is only needed when the mass
		// splits between several BSCCs.
		pi, err := c.stationaryOfClosedSet(ctx, bsccs[0])
		if err != nil {
			return nil, err
		}
		for k, s := range bsccs[0] {
			out[s] = pi[k]
		}
		return out, nil
	}
	emb, err := c.Embedded()
	if err != nil {
		return nil, err
	}
	for _, b := range bsccs {
		target := make([]bool, n)
		for _, s := range b {
			target[s] = true
		}
		reach, err := emb.Reachability(target, linalg.IterOpts{Tol: 1e-10, MaxIter: 500000})
		if err != nil {
			return nil, err
		}
		pAbsorb := init.Dot(reach)
		if pAbsorb == 0 {
			continue
		}
		pi, err := c.stationaryOfClosedSet(ctx, b)
		if err != nil {
			return nil, err
		}
		for k, s := range b {
			out[s] += pAbsorb * pi[k]
		}
	}
	// Numerical cleanup: the BSCC absorption probabilities sum to 1.
	out.Normalize1()
	return out, nil
}

// stationaryOfClosedSet computes the stationary distribution of the chain
// restricted to a closed (no outgoing rates) set of states. The result is
// indexed like the set slice.
func (c *Chain) stationaryOfClosedSet(ctx context.Context, set []int) (linalg.Vector, error) {
	m := len(set)
	if m == 1 {
		return linalg.Vector{1}, nil
	}
	idx := make(map[int]int, m)
	for k, s := range set {
		idx[s] = k
	}
	if m <= directSolveThreshold {
		return c.stationaryDirect(set, idx)
	}
	return c.stationaryIterative(ctx, set, idx)
}

// stationaryDirect solves πQᵀ = 0 with the normalisation Σπ = 1 replacing
// the last (redundant) balance equation.
func (c *Chain) stationaryDirect(set []int, idx map[int]int) (linalg.Vector, error) {
	m := len(set)
	a := linalg.NewDense(m, m)
	for k, s := range set {
		cols, vals := c.Rates.Row(s)
		for ci, j := range cols {
			kj, ok := idx[j]
			if !ok {
				return nil, fmt.Errorf("ctmc: state set not closed: %d → %d leaves the set", s, j)
			}
			// Column k of Qᵀ is row k of Q: balance equation for state kj
			// receives rate from state k.
			a.Add(kj, k, vals[ci])
		}
		a.Add(k, k, -c.Exit[s])
	}
	// Replace the last balance equation by Σπ = 1.
	for k := 0; k < m; k++ {
		a.Set(m-1, k, 1)
	}
	b := linalg.NewVector(m)
	b[m-1] = 1
	pi, err := linalg.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: direct stationary solve: %w", err)
	}
	for i := range pi {
		if pi[i] < 0 {
			pi[i] = 0 // tiny negative round-off
		}
	}
	pi.Normalize1()
	return pi, nil
}

// stationaryIterative solves the balance equations with a fixed reference
// state: set π_ref = 1, solve the remaining n−1 balance equations
// Σ_i π_i Q(i,j) = 0 (j ≠ ref) by Gauss–Seidel, then normalise. Unlike
// power iteration on the uniformised chain, this stays fast on stiff chains
// whose rates span many orders of magnitude (the Figure-6 sweeps go from
// 0.1 to 8760 per year).
func (c *Chain) stationaryIterative(ctx context.Context, set []int, idx map[int]int) (linalg.Vector, error) {
	ctx, sp := obs.Start(ctx, "ctmc.steadystate.solve")
	defer sp.End()
	m := len(set)
	if m == 0 {
		return nil, fmt.Errorf("ctmc: empty state set")
	}
	sp.Int("unknowns", int64(m-1))
	// Reference: any state in the (closed, strongly connected) set is
	// correct. The state with the smallest exit rate has the longest mean
	// sojourn and hence tends to carry large stationary mass, which keeps
	// the unnormalised solution values ≲ 1 and the absolute convergence
	// test meaningful.
	ref := 0
	for k, s := range set {
		if c.Exit[s] < c.Exit[set[ref]] {
			ref = k
		}
	}
	// Unknown ordering: all set positions except ref.
	unk := make([]int, 0, m-1) // position in set
	pos := make([]int, m)      // set position -> unknown index (-1 for ref)
	for k := range set {
		if k == ref {
			pos[k] = -1
			continue
		}
		pos[k] = len(unk)
		unk = append(unk, k)
	}
	// Balance equation for state j (column j of Q):
	//   Σ_i π_i R(i,j) − π_j·exit_j = 0.
	// Build A x = b with x the unknown π values and π_ref = 1 moved to b.
	coo := linalg.NewCOO(m-1, m-1)
	b := linalg.NewVector(m - 1)
	for k, s := range set {
		cols, vals := c.Rates.Row(s)
		for ci, j := range cols {
			kj, ok := idx[j]
			if !ok {
				return nil, fmt.Errorf("ctmc: state set not closed: %d → %d leaves the set", s, j)
			}
			if pos[kj] < 0 {
				continue // balance equation of ref is dropped (redundant)
			}
			if k == ref {
				b[pos[kj]] += vals[ci] // π_ref·R(ref,j) with π_ref = 1
			} else {
				coo.Add(pos[kj], pos[k], -vals[ci])
			}
		}
		if pos[k] >= 0 {
			coo.Add(pos[k], pos[k], c.Exit[s])
		}
	}
	// The fallback chain escalates gauss-seidel → jacobi → dense on
	// *ConvergenceError; each attempt lands in the run manifest.
	var rstats linalg.RobustStats
	y, err := linalg.RobustSolve(ctx, coo.ToCSR(), b, linalg.RobustOpts{
		Opts:  linalg.IterOpts{Tol: 1e-11, MaxIter: 500000},
		Stats: &rstats,
	})
	sp.Str("method", rstats.Method)
	if n := len(rstats.Attempts); n > 0 {
		last := rstats.Attempts[n-1]
		sp.Int("iterations", int64(last.Iterations))
		sp.Float("residual", last.Residual)
		sp.Int("trace_points", int64(len(last.Trace)))
	}
	if err != nil {
		// On exhausted fallback chains err still unwraps to the final
		// *linalg.ConvergenceError carrying the sweep count and residual;
		// preserve it through the wrap so callers can errors.As for details.
		return nil, fmt.Errorf("ctmc: iterative stationary solve (%d unknowns): %w", m-1, err)
	}
	pi := linalg.NewVector(m)
	pi[ref] = 1
	for u, k := range unk {
		v := y[u]
		if v < 0 {
			v = 0
		}
		pi[k] = v
	}
	pi.Normalize1()
	return pi, nil
}

// SteadyStateProbability returns the long-run probability of being in the
// masked states.
func (c *Chain) SteadyStateProbability(init linalg.Vector, mask []bool) (float64, error) {
	return c.SteadyStateProbabilityContext(context.Background(), init, mask)
}

// SteadyStateProbabilityContext is SteadyStateProbability with span
// propagation.
func (c *Chain) SteadyStateProbabilityContext(ctx context.Context, init linalg.Vector, mask []bool) (float64, error) {
	if len(mask) != c.N() {
		return 0, fmt.Errorf("ctmc: mask length %d, want %d", len(mask), c.N())
	}
	pi, err := c.SteadyStateContext(ctx, init)
	if err != nil {
		return 0, err
	}
	var p float64
	for i, in := range mask {
		if in {
			p += pi[i]
		}
	}
	return p, nil
}
