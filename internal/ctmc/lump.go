package ctmc

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
)

// Lumped is the quotient of a chain under ordinary lumpability: states in
// the same block are behaviourally equivalent with respect to the initial
// signature (e.g. the "violated" label and reward values), so every
// analysis on the quotient yields exactly the same answers at a fraction of
// the state count. This implements the state-merging optimisation the paper
// proposes in Sections 4.3 and 5 as future work.
type Lumped struct {
	// Quotient is the lumped chain over blocks.
	Quotient *Chain
	// BlockOf maps each original state to its block index.
	BlockOf []int
	// Blocks lists the original states of each block.
	Blocks [][]int
}

// Lump computes the coarsest ordinary lumping of the chain that refines the
// given signature partition: states with different signature values are
// never merged. Partition refinement iterates until every block is uniform
// in its total rate into every other block (the ordinary-lumpability
// condition), then builds the quotient.
func (c *Chain) Lump(signature []int) (*Lumped, error) {
	n := c.N()
	if len(signature) != n {
		return nil, fmt.Errorf("ctmc: signature length %d, want %d", len(signature), n)
	}
	if n == 0 {
		return &Lumped{Quotient: c, BlockOf: nil, Blocks: nil}, nil
	}
	// Initial partition by signature.
	blockOf := make([]int, n)
	{
		ids := make(map[int]int)
		for i, s := range signature {
			b, ok := ids[s]
			if !ok {
				b = len(ids)
				ids[s] = b
			}
			blockOf[i] = b
		}
	}
	// Pre-transpose: refinement needs incoming edges when using splitter
	// queues; the simple full-sweep refinement below only needs outgoing
	// rows, re-scanned until stable. Complexity O(iterations · nnz), fine
	// for the model sizes the exploration produces.
	numBlocks := maxOf(blockOf) + 1
	for {
		// For every state, build its rate profile into current blocks.
		type profileKey struct {
			oldBlock int
			profile  string
		}
		rates := make(map[int]float64, 8) // block -> rate, reused
		newIDs := make(map[profileKey]int)
		newBlockOf := make([]int, n)
		for i := 0; i < n; i++ {
			for k := range rates {
				delete(rates, k)
			}
			cols, vals := c.Rates.Row(i)
			for k, j := range cols {
				bj := blockOf[j]
				if bj == blockOf[i] {
					// Ordinary lumpability constrains only the rates into
					// *other* blocks; internal transitions never change the
					// aggregated block process.
					continue
				}
				rates[bj] += vals[k]
			}
			key := profileKey{oldBlock: blockOf[i], profile: profileString(rates)}
			id, ok := newIDs[key]
			if !ok {
				id = len(newIDs)
				newIDs[key] = id
			}
			newBlockOf[i] = id
		}
		if len(newIDs) == numBlocks {
			blockOf = newBlockOf
			break
		}
		numBlocks = len(newIDs)
		blockOf = newBlockOf
	}

	// Build blocks and the quotient chain.
	blocks := make([][]int, numBlocks)
	for i, b := range blockOf {
		blocks[b] = append(blocks[b], i)
	}
	qb := NewBuilder(numBlocks)
	for b, members := range blocks {
		rep := members[0]
		cols, vals := c.Rates.Row(rep)
		agg := make(map[int]float64)
		for k, j := range cols {
			if blockOf[j] != b {
				agg[blockOf[j]] += vals[k]
			}
		}
		targets := make([]int, 0, len(agg))
		for t := range agg {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			qb.Add(b, t, agg[t])
		}
	}
	q, err := qb.Build()
	if err != nil {
		return nil, err
	}
	return &Lumped{Quotient: q, BlockOf: blockOf, Blocks: blocks}, nil
}

// profileString encodes a block→rate map canonically.
func profileString(rates map[int]float64) string {
	if len(rates) == 0 {
		return ""
	}
	keys := make([]int, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]byte, 0, 16*len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%d:%.17g;", k, rates[k])...)
	}
	return string(out)
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// LumpDistribution projects a distribution over original states onto the
// blocks.
func (l *Lumped) LumpDistribution(init linalg.Vector) (linalg.Vector, error) {
	if len(init) != len(l.BlockOf) {
		return nil, fmt.Errorf("ctmc: distribution length %d, want %d", len(init), len(l.BlockOf))
	}
	out := linalg.NewVector(l.Quotient.N())
	for i, p := range init {
		out[l.BlockOf[i]] += p
	}
	return out, nil
}

// LumpMask projects a state mask onto blocks. The mask must be constant on
// every block (guaranteed when it was part of the lumping signature);
// otherwise an error is returned.
func (l *Lumped) LumpMask(mask []bool) ([]bool, error) {
	if len(mask) != len(l.BlockOf) {
		return nil, fmt.Errorf("ctmc: mask length %d, want %d", len(mask), len(l.BlockOf))
	}
	out := make([]bool, l.Quotient.N())
	set := make([]bool, l.Quotient.N())
	for i, m := range mask {
		b := l.BlockOf[i]
		if set[b] && out[b] != m {
			return nil, fmt.Errorf("ctmc: mask not constant on block %d; include it in the lumping signature", b)
		}
		out[b] = m
		set[b] = true
	}
	return out, nil
}

// LumpReward projects a state-reward vector onto blocks, requiring it to be
// constant per block.
func (l *Lumped) LumpReward(r linalg.Vector) (linalg.Vector, error) {
	if len(r) != len(l.BlockOf) {
		return nil, fmt.Errorf("ctmc: reward length %d, want %d", len(r), len(l.BlockOf))
	}
	out := linalg.NewVector(l.Quotient.N())
	set := make([]bool, l.Quotient.N())
	for i, v := range r {
		b := l.BlockOf[i]
		if set[b] && out[b] != v {
			return nil, fmt.Errorf("ctmc: reward not constant on block %d; include it in the lumping signature", b)
		}
		out[b] = v
		set[b] = true
	}
	return out, nil
}

// ExpandVector maps per-block values back to per-state values.
func (l *Lumped) ExpandVector(v linalg.Vector) (linalg.Vector, error) {
	if len(v) != l.Quotient.N() {
		return nil, fmt.Errorf("ctmc: block vector length %d, want %d", len(v), l.Quotient.N())
	}
	out := linalg.NewVector(len(l.BlockOf))
	for i, b := range l.BlockOf {
		out[i] = v[b]
	}
	return out, nil
}
