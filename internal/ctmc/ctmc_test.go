package ctmc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expm"
	"repro/internal/linalg"
)

// paperExample builds the worked example of the paper (Fig. 3 / Eq. 13–14):
// three states s0 → s1 → s2 with η = 2, ϕ = 52.
func paperExample(t *testing.T) *Chain {
	t.Helper()
	b := NewBuilder(3)
	b.Add(0, 1, 2)  // η_3G
	b.Add(1, 0, 52) // ϕ_3G
	b.Add(1, 2, 2)  // η_mc
	b.Add(2, 1, 52) // ϕ_mc
	b.Add(2, 0, 52) // ϕ_3G
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func twoState(t *testing.T, up, down float64) *Chain {
	t.Helper()
	b := NewBuilder(2)
	b.Add(0, 1, up)
	b.Add(1, 0, down)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuilderRejectsBadRates(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, -1)
	if _, err := b.Build(); !errors.Is(err, ErrBadRate) {
		t.Fatalf("err = %v", err)
	}
	b = NewBuilder(2)
	b.Add(0, 1, math.Inf(1))
	if _, err := b.Build(); !errors.Is(err, ErrBadRate) {
		t.Fatalf("err = %v", err)
	}
	b = NewBuilder(2)
	b.Add(0, 5, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range transition accepted")
	}
}

func TestBuilderIgnoresSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 99)
	b.Add(0, 1, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Exit[0] != 1 {
		t.Fatalf("exit[0] = %v", c.Exit[0])
	}
}

func TestGeneratorMatchesPaperEq14(t *testing.T) {
	c := paperExample(t)
	q := c.Generator().ToDense()
	want := [][]float64{
		{-2, 2, 0},
		{52, -54, 2},
		{52, 52, -104},
	}
	for i := range want {
		for j := range want[i] {
			if q.At(i, j) != want[i][j] {
				t.Fatalf("Q(%d,%d) = %v, want %v", i, j, q.At(i, j), want[i][j])
			}
		}
	}
}

// TestSteadyStatePaperEq15 checks the paper's stationary distribution
// π = (0.96296, 0.036338, 0.000699) to the printed precision.
func TestSteadyStatePaperEq15(t *testing.T) {
	c := paperExample(t)
	pi, err := c.SteadyState(c.DiracInit(0))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.96296, 0.036338, 0.000699}
	tol := []float64{5e-6, 5e-7, 5e-7}
	for i := range want {
		if math.Abs(pi[i]-want[i]) > tol[i] {
			t.Fatalf("π[%d] = %v, want %v (paper Eq. 15)", i, pi[i], want[i])
		}
	}
}

func TestSteadyStateExactRatios(t *testing.T) {
	// Closed form for the example: π0 = 26.5·π1, π2 = π1/52.
	c := paperExample(t)
	pi, err := c.SteadyState(c.DiracInit(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]/pi[1]-26.5) > 1e-9 {
		t.Fatalf("π0/π1 = %v", pi[0]/pi[1])
	}
	if math.Abs(pi[2]/pi[1]-1.0/52) > 1e-12 {
		t.Fatalf("π2/π1 = %v", pi[2]/pi[1])
	}
}

func TestTransientTwoStateAnalytic(t *testing.T) {
	lambda, mu := 3.0, 5.0
	c := twoState(t, lambda, mu)
	for _, tt := range []float64{0.01, 0.1, 0.5, 1, 4} {
		pi, err := c.Transient(c.DiracInit(0), tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		want := lambda / (lambda + mu) * (1 - math.Exp(-(lambda+mu)*tt))
		if math.Abs(pi[1]-want) > 1e-9 {
			t.Fatalf("t=%v: P[1] = %v, want %v", tt, pi[1], want)
		}
	}
}

func TestTransientZeroTime(t *testing.T) {
	c := twoState(t, 1, 1)
	pi, err := c.Transient(c.DiracInit(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 0 || pi[1] != 1 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestTransientRejectsBadInput(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.Transient(linalg.Vector{0.5, 0.2}, 1, 0); !errors.Is(err, ErrBadInit) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Transient(c.DiracInit(0), -1, 0); !errors.Is(err, ErrBadTime) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Transient(c.DiracInit(0), math.Inf(1), 0); !errors.Is(err, ErrBadTime) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransientNoTransitions(t *testing.T) {
	b := NewBuilder(2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Transient(c.DiracInit(0), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 1 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestCumulativeRewardTwoStateAnalytic(t *testing.T) {
	lambda, mu := 2.0, 7.0
	c := twoState(t, lambda, mu)
	r := linalg.Vector{0, 1} // time spent in state 1
	for _, tt := range []float64{0.1, 1, 3} {
		got, err := c.CumulativeReward(c.DiracInit(0), r, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		s := lambda + mu
		want := lambda / s * (tt - (1-math.Exp(-s*tt))/s)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("t=%v: cumulative = %v, want %v", tt, got, want)
		}
	}
}

func TestCumulativeRewardZeroHorizon(t *testing.T) {
	c := twoState(t, 1, 1)
	got, err := c.CumulativeReward(c.DiracInit(0), linalg.Vector{1, 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestCumulativeRewardConstantRate(t *testing.T) {
	// Reward 1 everywhere accumulates exactly t.
	c := paperExample(t)
	r := linalg.Vector{1, 1, 1}
	got, err := c.CumulativeReward(c.DiracInit(0), r, 2.5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 1e-8 {
		t.Fatalf("got %v, want 2.5", got)
	}
}

func TestInstantaneousReward(t *testing.T) {
	lambda, mu := 3.0, 5.0
	c := twoState(t, lambda, mu)
	got, err := c.InstantaneousReward(c.DiracInit(0), linalg.Vector{0, 10}, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * lambda / (lambda + mu) * (1 - math.Exp(-(lambda + mu)))
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTimeBoundedReachabilityPureBirth(t *testing.T) {
	// 0 → 1 at rate λ, 1 absorbing: P[reach 1 by t] = 1 − e^{-λt}.
	lambda := 1.7
	b := NewBuilder(2)
	b.Add(0, 1, lambda)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.2, 1, 5} {
		got, err := c.TimeBoundedReachability(c.DiracInit(0), []bool{false, true}, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-lambda*tt)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("t=%v: got %v, want %v", tt, got, want)
		}
	}
}

func TestTimeBoundedReachabilityCountsRevisits(t *testing.T) {
	// Target must be absorbing for "reach within t": even if the chain
	// leaves the target afterwards, the reach probability can't decrease
	// with t.
	c := twoState(t, 1, 100) // state 1 left very quickly
	p1, err := c.TimeBoundedReachability(c.DiracInit(0), []bool{false, true}, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.TimeBoundedReachability(c.DiracInit(0), []bool{false, true}, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < p1 {
		t.Fatalf("reach prob decreased: %v then %v", p1, p2)
	}
	want := 1 - math.Exp(-1.0) // rate-1 exponential hitting time
	if math.Abs(p1-want) > 1e-9 {
		t.Fatalf("p1 = %v, want %v", p1, want)
	}
}

func TestBoundedUntil(t *testing.T) {
	// 0 → 1 → 2; φ1 = {0}, φ2 = {2}: passing through 1 violates φ1, so the
	// probability is 0. With φ1 = {0,1} it equals P[reach 2 ≤ t].
	b := NewBuilder(3)
	b.Add(0, 1, 2)
	b.Add(1, 2, 3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.BoundedUntil(c.DiracInit(0), []bool{true, false, false}, []bool{false, false, true}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-12 {
		t.Fatalf("blocked until gave %v", p)
	}
	p, err = c.BoundedUntil(c.DiracInit(0), []bool{true, true, false}, []bool{false, false, true}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	reach, err := c.TimeBoundedReachability(c.DiracInit(0), []bool{false, false, true}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-reach) > 1e-10 {
		t.Fatalf("until %v != reach %v", p, reach)
	}
}

func TestUnboundedReachability(t *testing.T) {
	// 0 → 1 (rate 1) and 0 → 2 (rate 3), both absorbing: P[reach 2] = 3/4.
	b := NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(0, 2, 3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.UnboundedReachability(c.DiracInit(0), []bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-9 {
		t.Fatalf("p = %v", p)
	}
}

func TestReachabilityRewardExpectedHittingTime(t *testing.T) {
	// Expected time to go 0 → 1 → 2 with rates 2 and 4: 1/2 + 1/4.
	b := NewBuilder(3)
	b.Add(0, 1, 2)
	b.Add(1, 2, 4)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := linalg.Vector{1, 1, 1}
	got, err := c.ReachabilityReward(c.DiracInit(0), r, []bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("hitting time = %v, want 0.75", got)
	}
}

func TestReachabilityRewardInfinite(t *testing.T) {
	// 0 → 1 or 0 → 2 (absorbing traps); target {1} reached with prob 1/2.
	b := NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(0, 2, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReachabilityReward(c.DiracInit(0), linalg.Vector{1, 1, 1}, []bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("got %v, want +Inf", got)
	}
}

func TestExpectedTimeFractionMatchesSteadyStateLongRun(t *testing.T) {
	// Over a very long horizon the time fraction approaches the stationary
	// probability.
	c := paperExample(t)
	mask := []bool{false, false, true}
	frac, err := c.ExpectedTimeFraction(c.DiracInit(0), mask, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(c.DiracInit(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac-pi[2]) > 1e-5 {
		t.Fatalf("fraction %v vs stationary %v", frac, pi[2])
	}
}

func TestSteadyStateReducible(t *testing.T) {
	// 0 → 1 (rate 1) and 0 → 2 (rate 3); 1 and 2 absorbing.
	// π∞ = (0, 1/4, 3/4).
	b := NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(0, 2, 3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(c.DiracInit(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]) > 1e-12 || math.Abs(pi[1]-0.25) > 1e-9 || math.Abs(pi[2]-0.75) > 1e-9 {
		t.Fatalf("π = %v", pi)
	}
}

func TestSteadyStateReducibleWithCycleBSCC(t *testing.T) {
	// 0 → {1,2} cycle: all long-run mass in the cycle, split by rates.
	b := NewBuilder(3)
	b.Add(0, 1, 5)
	b.Add(1, 2, 1)
	b.Add(2, 1, 3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(c.DiracInit(0))
	if err != nil {
		t.Fatal(err)
	}
	// Two-state cycle with rates 1 and 3: π1 = 3/4, π2 = 1/4.
	if math.Abs(pi[1]-0.75) > 1e-9 || math.Abs(pi[2]-0.25) > 1e-9 {
		t.Fatalf("π = %v", pi)
	}
}

func randomChain(r *rand.Rand, n int, maxRate float64) *Chain {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.5 {
				b.Add(i, j, r.Float64()*maxRate)
			}
		}
	}
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// Property: uniformisation agrees with the dense matrix exponential
// π(t) = init·e^{Qt} on random small chains.
func TestQuickTransientMatchesMatrixExponential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		c := randomChain(r, n, 4)
		tt := r.Float64() * 3
		init := c.DiracInit(r.Intn(n))
		got, err := c.Transient(init, tt, 1e-12)
		if err != nil {
			return false
		}
		q := c.Generator().ToDense()
		q.Scale(tt)
		e, err := expm.Exp(q)
		if err != nil {
			return false
		}
		want, err := e.VecMul(init, nil)
		if err != nil {
			return false
		}
		return got.MaxDiff(want) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: steady state satisfies πQ = 0 and sums to 1 for random
// irreducible chains (strictly positive rates everywhere ⇒ irreducible).
func TestQuickSteadyStateBalance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					b.Add(i, j, 0.05+r.Float64()*3)
				}
			}
		}
		c, err := b.Build()
		if err != nil {
			return false
		}
		pi, err := c.SteadyState(c.DiracInit(0))
		if err != nil {
			return false
		}
		if math.Abs(pi.Sum()-1) > 1e-9 {
			return false
		}
		// Check balance: (πQ)_j = Σ_i π_i Q(i,j) ≈ 0.
		qd := c.Generator().ToDense()
		res, err := qd.VecMul(pi, nil)
		if err != nil {
			return false
		}
		return res.NormInf() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: cumulative reward with indicator mask equals the integral of the
// transient probability (checked against numeric quadrature).
func TestQuickCumulativeMatchesQuadrature(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		c := randomChain(r, n, 3)
		tt := 0.5 + r.Float64()*2
		init := c.DiracInit(0)
		mask := make([]bool, n)
		mask[r.Intn(n)] = true
		rew := linalg.NewVector(n)
		for i, m := range mask {
			if m {
				rew[i] = 1
			}
		}
		got, err := c.CumulativeReward(init, rew, tt, 1e-12)
		if err != nil {
			return false
		}
		// Simpson quadrature over the transient probabilities.
		const steps = 64
		h := tt / steps
		var integral float64
		for k := 0; k <= steps; k++ {
			pi, err := c.Transient(init, float64(k)*h, 1e-12)
			if err != nil {
				return false
			}
			var p float64
			for i, m := range mask {
				if m {
					p += pi[i]
				}
			}
			w := 2.0
			if k == 0 || k == steps {
				w = 1
			} else if k%2 == 1 {
				w = 4
			}
			integral += w * p
		}
		integral *= h / 3
		return math.Abs(got-integral) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorbingMask(t *testing.T) {
	c := paperExample(t)
	mod, err := c.Absorbing([]bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if mod.Exit[1] != 0 {
		t.Fatalf("state 1 not absorbing: exit %v", mod.Exit[1])
	}
	if mod.Exit[0] != 2 {
		t.Fatalf("state 0 modified: exit %v", mod.Exit[0])
	}
}

func TestUniformizedIsStochastic(t *testing.T) {
	c := paperExample(t)
	uni, q, err := c.Uniformized(0)
	if err != nil {
		t.Fatal(err)
	}
	if q < c.MaxExitRate() {
		t.Fatalf("q = %v below max exit %v", q, c.MaxExitRate())
	}
	sums := uni.P.RowSums()
	for i, s := range sums {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestEmbeddedChain(t *testing.T) {
	c := paperExample(t)
	emb, err := c.Embedded()
	if err != nil {
		t.Fatal(err)
	}
	// From s1: exit 54, split 52:2.
	if math.Abs(emb.P.At(1, 0)-52.0/54) > 1e-12 {
		t.Fatalf("P(1,0) = %v", emb.P.At(1, 0))
	}
	if math.Abs(emb.P.At(1, 2)-2.0/54) > 1e-12 {
		t.Fatalf("P(1,2) = %v", emb.P.At(1, 2))
	}
}

// TestSteadyStateLargeBirthDeath forces the iterative stationary solver
// (the state count exceeds the direct-solve threshold) and checks against
// the closed-form geometric distribution of an M/M/1/c queue.
func TestSteadyStateLargeBirthDeath(t *testing.T) {
	const n = 400 // > directSolveThreshold
	lambda, mu := 2.0, 3.0
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.Add(i, i+1, lambda)
		b.Add(i+1, i, mu)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(c.DiracInit(0))
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	// π_k ∝ ρ^k; normalisation (1-ρ)/(1-ρ^n).
	z := (1 - math.Pow(rho, n)) / (1 - rho)
	for _, k := range []int{0, 1, 10, 100, 399} {
		want := math.Pow(rho, float64(k)) / z
		if math.Abs(pi[k]-want) > 1e-9*(1+want) {
			t.Fatalf("π[%d] = %v, want %v", k, pi[k], want)
		}
	}
	if math.Abs(pi.Sum()-1) > 1e-9 {
		t.Fatalf("sum = %v", pi.Sum())
	}
}

// TestSteadyStateLargeStiff exercises the iterative solver on a stiff chain
// (rates spanning five orders of magnitude, like the Figure-6 sweeps).
func TestSteadyStateLargeStiff(t *testing.T) {
	const n = 300
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.Add(i, i+1, 0.1)
		b.Add(i+1, i, 8760)
	}
	// Make it strongly connected beyond the path: wrap-around.
	b.Add(n-1, 0, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(c.DiracInit(0))
	if err != nil {
		t.Fatal(err)
	}
	// Verify the balance equations directly.
	res, err := c.Generator().ToDense().VecMul(pi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NormInf() > 1e-8 {
		t.Fatalf("balance residual %v", res.NormInf())
	}
}
