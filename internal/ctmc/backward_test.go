package ctmc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestBackwardTransientMatchesForward(t *testing.T) {
	// init·e^{Qt}·v computed both ways must agree.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		c := randomChain(r, n, 4)
		tt := r.Float64() * 2
		v := linalg.NewVector(n)
		for i := range v {
			v[i] = r.Float64() * 3
		}
		init := c.DiracInit(r.Intn(n))
		fwd, err := c.Transient(init, tt, 1e-12)
		if err != nil {
			return false
		}
		bwd, err := c.BackwardTransient(v, tt, 1e-12)
		if err != nil {
			return false
		}
		return math.Abs(fwd.Dot(v)-init.Dot(bwd)) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardTransientZeroTime(t *testing.T) {
	c := twoState(t, 1, 2)
	v := linalg.Vector{3, 7}
	out, err := c.BackwardTransient(v, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxDiff(v) != 0 {
		t.Fatalf("out = %v", out)
	}
	out[0] = 99
	if v[0] == 99 {
		t.Fatal("aliases input")
	}
}

func TestTimeBoundedReachabilityVectorMatchesScalar(t *testing.T) {
	c := paperExample(t)
	target := []bool{false, false, true}
	vec, err := c.TimeBoundedReachabilityVector(target, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		scalar, err := c.TimeBoundedReachability(c.DiracInit(s), target, 1, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vec[s]-scalar) > 1e-9 {
			t.Fatalf("state %d: vector %v vs scalar %v", s, vec[s], scalar)
		}
	}
	if vec[2] != 1 {
		t.Fatalf("target state reach prob = %v", vec[2])
	}
}

func TestBoundedUntilVectorMatchesScalar(t *testing.T) {
	c := paperExample(t)
	phi1 := []bool{true, true, false}
	phi2 := []bool{false, false, true}
	vec, err := c.BoundedUntilVector(phi1, phi2, 0.7, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		scalar, err := c.BoundedUntil(c.DiracInit(s), phi1, phi2, 0.7, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vec[s]-scalar) > 1e-9 {
			t.Fatalf("state %d: vector %v vs scalar %v", s, vec[s], scalar)
		}
	}
}

func TestIntervalUntilDegeneratesToBounded(t *testing.T) {
	c := paperExample(t)
	phi1 := []bool{true, true, true}
	phi2 := []bool{false, false, true}
	a, err := c.IntervalUntil(c.DiracInit(0), phi1, phi2, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.BoundedUntil(c.DiracInit(0), phi1, phi2, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("t1=0 interval %v != bounded %v", a, b)
	}
}

func TestIntervalUntilPureBirthAnalytic(t *testing.T) {
	// 0 → 1 at rate λ, 1 absorbing, φ1 = {0}, φ2 = {1}:
	// P[φ1 U[t1,t2] φ2 | X_0 = 0] = P[T ∈ [0, t2]] − P[T < t1 ... ] —
	// precisely: the jump must happen in [t1, t2] OR have happened... no:
	// if the jump happens before t1, the state at t1 is 1 (∉ φ1) but φ2 is
	// still witnessed at t1 only if φ2 holds at some t ∈ [t1,t2] with φ1
	// before — φ1 fails on [T, t1). So P = e^{-λt1} − e^{-λt2}.
	lambda := 1.3
	b := NewBuilder(2)
	b.Add(0, 1, lambda)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := 0.4, 1.7
	got, err := c.IntervalUntil(c.DiracInit(0), []bool{true, false}, []bool{false, true}, t1, t2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-lambda*t1) - math.Exp(-lambda*t2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIntervalUntilInvalidInterval(t *testing.T) {
	c := twoState(t, 1, 1)
	phi := []bool{true, true}
	if _, err := c.IntervalUntil(c.DiracInit(0), phi, phi, 2, 1, 0); err == nil {
		t.Fatal("t2 < t1 accepted")
	}
	if _, err := c.IntervalUntil(c.DiracInit(0), phi, phi, -1, 1, 0); err == nil {
		t.Fatal("negative t1 accepted")
	}
}

func TestCumulativeRewardVectorMatchesScalar(t *testing.T) {
	c := paperExample(t)
	r := linalg.Vector{0, 1, 3}
	vec, err := c.CumulativeRewardVector(r, 1.5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		scalar, err := c.CumulativeReward(c.DiracInit(s), r, 1.5, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vec[s]-scalar) > 1e-8 {
			t.Fatalf("state %d: vector %v vs scalar %v", s, vec[s], scalar)
		}
	}
}

func TestReachabilityVectorMonotoneInTime(t *testing.T) {
	c := paperExample(t)
	target := []bool{false, false, true}
	v1, err := c.TimeBoundedReachabilityVector(target, 0.5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.TimeBoundedReachabilityVector(target, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v2[i] < v1[i]-1e-12 {
			t.Fatalf("reach prob decreased at state %d: %v -> %v", i, v1[i], v2[i])
		}
	}
}
