package ctmc

import (
	"context"
	"fmt"

	"repro/internal/foxglynn"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// BackwardTransient computes u(t) = e^{Qt}·v for a value vector v: component
// i is the expected value of v at the state occupied at time t, given start
// in state i. One backward pass yields the result for every initial state
// simultaneously (the dual of Transient, using matrix–vector instead of
// vector–matrix products), which is what per-state property evaluation and
// interval-until checking need.
func (c *Chain) BackwardTransient(values linalg.Vector, t, accuracy float64) (linalg.Vector, error) {
	return c.BackwardTransientContext(context.Background(), values, t, accuracy)
}

// BackwardTransientContext is BackwardTransient with span propagation
// ("ctmc.backward_transient": q, Fox–Glynn window, matvec count).
func (c *Chain) BackwardTransientContext(ctx context.Context, values linalg.Vector, t, accuracy float64) (linalg.Vector, error) {
	_, sp := obs.Start(ctx, "ctmc.backward_transient")
	defer sp.End()
	if len(values) != c.N() {
		return nil, fmt.Errorf("ctmc: value vector length %d, want %d", len(values), c.N())
	}
	if err := checkTime(t); err != nil {
		return nil, err
	}
	if accuracy <= 0 {
		accuracy = DefaultAccuracy
	}
	if t == 0 {
		return values.Clone(), nil
	}
	uni, q, err := c.Uniformized(0)
	if err != nil {
		return nil, err
	}
	fg, err := foxglynn.Compute(q*t, accuracy)
	if err != nil {
		return nil, err
	}
	uniSetup(sp, c.N(), t, q, fg)
	out := linalg.NewVector(c.N())
	cur := values.Clone()
	next := linalg.NewVector(c.N())
	matvecs := 0
	for k := 0; k <= fg.Right; k++ {
		if k >= fg.Left {
			out.AddScaled(fg.Weights[k-fg.Left], cur)
		}
		if k == fg.Right {
			break
		}
		if _, err := uni.P.MulVec(cur, next); err != nil {
			return nil, err
		}
		matvecs++
		cur, next = next, cur
	}
	sp.Int("matvecs", int64(matvecs))
	return out, nil
}

// TimeBoundedReachabilityVector computes, for every state simultaneously,
// P_i[reach target within t] by making the target absorbing and running one
// backward pass from the target indicator.
func (c *Chain) TimeBoundedReachabilityVector(target []bool, t, accuracy float64) (linalg.Vector, error) {
	return c.TimeBoundedReachabilityVectorContext(context.Background(), target, t, accuracy)
}

// TimeBoundedReachabilityVectorContext is TimeBoundedReachabilityVector with
// span propagation.
func (c *Chain) TimeBoundedReachabilityVectorContext(ctx context.Context, target []bool, t, accuracy float64) (linalg.Vector, error) {
	if len(target) != c.N() {
		return nil, fmt.Errorf("ctmc: target mask length %d, want %d", len(target), c.N())
	}
	mod, err := c.Absorbing(target)
	if err != nil {
		return nil, err
	}
	v := linalg.NewVector(c.N())
	for i, in := range target {
		if in {
			v[i] = 1
		}
	}
	out, err := mod.BackwardTransientContext(ctx, v, t, accuracy)
	if err != nil {
		return nil, err
	}
	for i := range out {
		if target[i] {
			out[i] = 1 // absorbing target: exact, independent of truncation
		} else {
			out[i] = clampUnit(out[i])
		}
	}
	return out, nil
}

// BoundedUntilVector computes P_i[φ1 U≤t φ2] for every state i.
func (c *Chain) BoundedUntilVector(phi1, phi2 []bool, t, accuracy float64) (linalg.Vector, error) {
	return c.BoundedUntilVectorContext(context.Background(), phi1, phi2, t, accuracy)
}

// BoundedUntilVectorContext is BoundedUntilVector with span propagation.
func (c *Chain) BoundedUntilVectorContext(ctx context.Context, phi1, phi2 []bool, t, accuracy float64) (linalg.Vector, error) {
	n := c.N()
	if len(phi1) != n || len(phi2) != n {
		return nil, fmt.Errorf("ctmc: formula mask length mismatch (want %d)", n)
	}
	absorb := make([]bool, n)
	for i := 0; i < n; i++ {
		absorb[i] = phi2[i] || !phi1[i]
	}
	mod, err := c.Absorbing(absorb)
	if err != nil {
		return nil, err
	}
	v := linalg.NewVector(n)
	for i := range v {
		if phi2[i] {
			v[i] = 1
		}
	}
	out, err := mod.BackwardTransientContext(ctx, v, t, accuracy)
	if err != nil {
		return nil, err
	}
	for i := range out {
		if phi2[i] {
			out[i] = 1 // satisfied immediately
		} else {
			out[i] = clampUnit(out[i])
		}
	}
	return out, nil
}

// IntervalUntil computes P[φ1 U[t1,t2] φ2] from init for 0 ≤ t1 ≤ t2: the
// probability that φ2 is witnessed at some time in [t1, t2] with φ1 holding
// continuously before the witness. The standard two-phase construction
// (Baier, Haverkort, Hermanns, Katoen) applies:
//
//  1. y = per-state probabilities of φ1 U≤(t2−t1) φ2;
//  2. result = E_init[ 1(φ1 holds on [0,t1]) · y(X_{t1}) ], computed as one
//     backward pass over the chain with ¬φ1 states absorbing and y masked
//     to φ1 states.
func (c *Chain) IntervalUntil(init linalg.Vector, phi1, phi2 []bool, t1, t2, accuracy float64) (float64, error) {
	return c.IntervalUntilContext(context.Background(), init, phi1, phi2, t1, t2, accuracy)
}

// IntervalUntilContext is IntervalUntil with span propagation (both backward
// passes appear as child spans).
func (c *Chain) IntervalUntilContext(ctx context.Context, init linalg.Vector, phi1, phi2 []bool, t1, t2, accuracy float64) (float64, error) {
	n := c.N()
	if err := c.checkInit(init); err != nil {
		return 0, err
	}
	if len(phi1) != n || len(phi2) != n {
		return 0, fmt.Errorf("ctmc: formula mask length mismatch (want %d)", n)
	}
	if t1 < 0 || t2 < t1 {
		return 0, fmt.Errorf("%w: interval [%v, %v]", ErrBadTime, t1, t2)
	}
	if t1 == 0 {
		return c.BoundedUntilContext(ctx, init, phi1, phi2, t2, accuracy)
	}
	y, err := c.BoundedUntilVectorContext(ctx, phi1, phi2, t2-t1, accuracy)
	if err != nil {
		return 0, err
	}
	notPhi1 := make([]bool, n)
	masked := linalg.NewVector(n)
	for i := 0; i < n; i++ {
		notPhi1[i] = !phi1[i]
		if phi1[i] {
			masked[i] = y[i]
		}
	}
	mod, err := c.Absorbing(notPhi1)
	if err != nil {
		return 0, err
	}
	u, err := mod.BackwardTransientContext(ctx, masked, t1, accuracy)
	if err != nil {
		return 0, err
	}
	return clampUnit(init.Dot(u)), nil
}

// CumulativeRewardVector computes, for every state simultaneously, the
// expected reward accumulated over [0, t] when starting there. Backward
// counterpart of CumulativeReward:
// u = Σ_k (1/q)(1 − Σ_{i≤k} γ_i) · Pᵏ·r.
func (c *Chain) CumulativeRewardVector(reward linalg.Vector, t, accuracy float64) (linalg.Vector, error) {
	return c.CumulativeRewardVectorContext(context.Background(), reward, t, accuracy)
}

// CumulativeRewardVectorContext is CumulativeRewardVector with span
// propagation ("ctmc.cumulative_reward_vec").
func (c *Chain) CumulativeRewardVectorContext(ctx context.Context, reward linalg.Vector, t, accuracy float64) (linalg.Vector, error) {
	_, sp := obs.Start(ctx, "ctmc.cumulative_reward_vec")
	defer sp.End()
	n := c.N()
	if len(reward) != n {
		return nil, fmt.Errorf("ctmc: reward vector length %d, want %d", len(reward), n)
	}
	if err := checkTime(t); err != nil {
		return nil, err
	}
	if accuracy <= 0 {
		accuracy = DefaultAccuracy
	}
	out := linalg.NewVector(n)
	if t == 0 {
		return out, nil
	}
	uni, q, err := c.Uniformized(0)
	if err != nil {
		return nil, err
	}
	fg, err := foxglynn.Compute(q*t, accuracy)
	if err != nil {
		return nil, err
	}
	uniSetup(sp, n, t, q, fg)
	var cumWeight float64
	cur := reward.Clone()
	next := linalg.NewVector(n)
	matvecs := 0
	for k := 0; k <= fg.Right; k++ {
		if k >= fg.Left {
			cumWeight += fg.Weights[k-fg.Left]
		}
		if w := (1 - cumWeight) / q; w > 0 {
			out.AddScaled(w, cur)
		}
		if k == fg.Right {
			break
		}
		if _, err := uni.P.MulVec(cur, next); err != nil {
			return nil, err
		}
		matvecs++
		cur, next = next, cur
	}
	sp.Int("matvecs", int64(matvecs))
	return out, nil
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
