package ctmc

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func TestIntervalUntilVectorMatchesScalar(t *testing.T) {
	c := paperExample(t)
	phi1 := []bool{true, true, true}
	phi2 := []bool{false, false, true}
	vec, err := c.IntervalUntilVector(phi1, phi2, 0.3, 1.2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		scalar, err := c.IntervalUntil(c.DiracInit(s), phi1, phi2, 0.3, 1.2, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vec[s]-scalar) > 1e-9 {
			t.Fatalf("state %d: %v vs %v", s, vec[s], scalar)
		}
	}
}

func TestNextVector(t *testing.T) {
	// From s1 of the paper example, exits split 52:2 between s0 and s2.
	c := paperExample(t)
	v, err := c.NextVector([]bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[1]-2.0/54) > 1e-12 {
		t.Fatalf("v[1] = %v", v[1])
	}
	if v[0] != 0 {
		t.Fatalf("v[0] = %v", v[0])
	}
}

func TestNextVectorAbsorbing(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.NextVector([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if v[1] != 0 {
		t.Fatalf("absorbing state next prob = %v", v[1])
	}
}

func TestUnboundedReachabilityVector(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(0, 2, 3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.UnboundedReachabilityVector([]bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-0.75) > 1e-9 || v[1] != 0 || v[2] != 1 {
		t.Fatalf("v = %v", v)
	}
}

func TestSteadyStateVectorIrreducible(t *testing.T) {
	// Irreducible chain: identical long-run value from every state.
	c := paperExample(t)
	mask := []bool{false, false, true}
	v, err := c.SteadyStateVector(mask)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.SteadyStateProbability(c.DiracInit(0), mask)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if math.Abs(x-want) > 1e-9 {
			t.Fatalf("state %d: %v, want %v", i, x, want)
		}
	}
}

func TestSteadyStateVectorReducible(t *testing.T) {
	// 0 → 1 (rate 1) and 0 → 2 (rate 3), absorbing: long-run P[in {2}] is
	// 3/4 from 0, 0 from 1, 1 from 2.
	b := NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(0, 2, 3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.SteadyStateVector([]bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-0.75) > 1e-9 || v[1] != 0 || math.Abs(v[2]-1) > 1e-12 {
		t.Fatalf("v = %v", v)
	}
}

func TestReachabilityRewardVector(t *testing.T) {
	// 0 → 1 → 2 with rates 2 and 4, reward 1 everywhere:
	// expected time to reach 2 is 3/4 from 0, 1/4 from 1, 0 from 2.
	b := NewBuilder(3)
	b.Add(0, 1, 2)
	b.Add(1, 2, 4)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.ReachabilityRewardVector(linalg.Vector{1, 1, 1}, []bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-0.75) > 1e-9 || math.Abs(v[1]-0.25) > 1e-9 || v[2] != 0 {
		t.Fatalf("v = %v", v)
	}
}

func TestReachabilityRewardVectorInfinite(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(0, 2, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.ReachabilityRewardVector(linalg.Vector{1, 1, 1}, []bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v[0], 1) || !math.IsInf(v[2], 1) || v[1] != 0 {
		t.Fatalf("v = %v", v)
	}
}
