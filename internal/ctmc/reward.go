package ctmc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// ReachabilityReward computes the expected reward accumulated until first
// reaching a target state, E[∫₀^{T_target} r(X_s) ds], following PRISM's
// semantics: states from which the target is reached with probability < 1
// (and initial distributions touching them) yield +Inf.
//
// For non-target states the expectation satisfies
//
//	x_i = r_i/E_i + Σ_j R(i,j)/E_i · x_j
//
// (the mean sojourn time 1/E_i weights the state reward), which is solved
// as a sparse linear system over the states that reach the target almost
// surely.
func (c *Chain) ReachabilityReward(init linalg.Vector, reward linalg.Vector, target []bool) (float64, error) {
	return c.ReachabilityRewardContext(context.Background(), init, reward, target)
}

// ReachabilityRewardContext is ReachabilityReward with span propagation.
func (c *Chain) ReachabilityRewardContext(ctx context.Context, init linalg.Vector, reward linalg.Vector, target []bool) (float64, error) {
	if err := c.checkInit(init); err != nil {
		return 0, err
	}
	x, err := c.reachabilityRewardAll(ctx, reward, target)
	if err != nil {
		return 0, err
	}
	var total float64
	for i, p := range init {
		if p == 0 {
			continue
		}
		if math.IsInf(x[i], 1) {
			return math.Inf(1), nil
		}
		total += p * x[i]
	}
	return total, nil
}

// reachabilityRewardAll solves the expected-reward-to-target system for
// every state at once.
func (c *Chain) reachabilityRewardAll(ctx context.Context, reward linalg.Vector, target []bool) (linalg.Vector, error) {
	_, sp := obs.Start(ctx, "ctmc.reachability_reward")
	defer sp.End()
	n := c.N()
	if len(reward) != n {
		return nil, fmt.Errorf("ctmc: reward vector length %d, want %d", len(reward), n)
	}
	if len(target) != n {
		return nil, fmt.Errorf("ctmc: target mask length %d, want %d", len(target), n)
	}
	sp.Int("states", int64(n))
	emb, err := c.Embedded()
	if err != nil {
		return nil, err
	}
	reach, err := emb.Reachability(target, linalg.IterOpts{})
	if err != nil {
		return nil, err
	}
	// Classify: finite states reach the target with probability one.
	finite := make([]bool, n)
	for i := 0; i < n; i++ {
		finite[i] = target[i] || reach[i] > 1-1e-9
	}
	idx := make([]int, n)
	var unknowns []int
	for i := 0; i < n; i++ {
		if finite[i] && !target[i] {
			idx[i] = len(unknowns)
			unknowns = append(unknowns, i)
		} else {
			idx[i] = -1
		}
	}
	x := linalg.NewVector(n)
	for i := 0; i < n; i++ {
		if !finite[i] {
			x[i] = math.Inf(1)
		}
	}
	sp.Int("unknowns", int64(len(unknowns)))
	if len(unknowns) > 0 {
		coo := linalg.NewCOO(len(unknowns), len(unknowns))
		b := linalg.NewVector(len(unknowns))
		for ui, i := range unknowns {
			e := c.Exit[i]
			if e == 0 {
				// Absorbing non-target state that "reaches" the target with
				// probability 1 is impossible; guard anyway.
				return nil, fmt.Errorf("ctmc: inconsistent reachability classification at state %d", i)
			}
			coo.Add(ui, ui, 1)
			b[ui] = reward[i] / e
			cols, vals := c.Rates.Row(i)
			for k, j := range cols {
				p := vals[k] / e
				if target[j] || p == 0 {
					continue // x_j = 0 for target states
				}
				uj := idx[j]
				if uj < 0 {
					// j is an infinite state; but then i could not reach the
					// target almost surely unless the rate is zero.
					return nil, fmt.Errorf("ctmc: almost-sure state %d has positive rate into divergent state %d", i, j)
				}
				coo.Add(ui, uj, -p)
			}
		}
		// Slow-mixing chains (rare escapes out of a strongly recurrent
		// secure region) need generous sweep budgets; the relative
		// tolerance keeps the criterion meaningful for large expected
		// rewards.
		var rstats linalg.RobustStats
		y, err := linalg.RobustSolve(ctx, coo.ToCSR(), b, linalg.RobustOpts{
			Opts:  linalg.IterOpts{Tol: 1e-10, MaxIter: 2_000_000},
			Stats: &rstats,
		})
		sp.Str("method", rstats.Method)
		if n := len(rstats.Attempts); n > 0 {
			last := rstats.Attempts[n-1]
			sp.Int("iterations", int64(last.Iterations))
			sp.Float("residual", last.Residual)
			sp.Int("trace_points", int64(len(last.Trace)))
		}
		if err != nil {
			return nil, fmt.Errorf("ctmc: reachability-reward solve: %w", err)
		}
		for ui, i := range unknowns {
			x[i] = y[ui]
		}
	}
	return x, nil
}

// ExpectedTimeFraction returns the expected fraction of the interval [0, t]
// spent in the masked states — the paper's "percentage of time the message
// is exploitable within 1 year" metric.
func (c *Chain) ExpectedTimeFraction(init linalg.Vector, mask []bool, t, accuracy float64) (float64, error) {
	return c.ExpectedTimeFractionContext(context.Background(), init, mask, t, accuracy)
}

// ExpectedTimeFractionContext is ExpectedTimeFraction with span propagation
// (the cumulative-reward solve appears as a child span).
func (c *Chain) ExpectedTimeFractionContext(ctx context.Context, init linalg.Vector, mask []bool, t, accuracy float64) (float64, error) {
	if len(mask) != c.N() {
		return 0, fmt.Errorf("ctmc: mask length %d, want %d", len(mask), c.N())
	}
	if t <= 0 {
		return 0, fmt.Errorf("%w: horizon must be positive, got %v", ErrBadTime, t)
	}
	r := linalg.NewVector(c.N())
	for i, in := range mask {
		if in {
			r[i] = 1
		}
	}
	cum, err := c.CumulativeRewardContext(ctx, init, r, t, accuracy)
	if err != nil {
		return 0, err
	}
	return cum / t, nil
}
