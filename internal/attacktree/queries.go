package attacktree

import (
	"fmt"
	"strconv"
)

// CSL query synthesis: the standard attack-tree questions phrased against
// the compiled model's "goal" label and reward structures, in the property
// syntax `internal/csl` parses. Keeping these as strings (rather than
// constructing csl.Property values directly) means the service's property
// pipeline — syntax checking at submission, caching keyed on the source
// text, the checker itself — treats synthesized and hand-written queries
// identically.

func formatTime(t float64) string {
	return strconv.FormatFloat(t, 'g', -1, 64)
}

// TopEventQuery is the probability the top event occurs within horizon
// years (unbounded reachability when horizon <= 0).
func TopEventQuery(horizon float64) string {
	if horizon <= 0 {
		return `P=? [ F "goal" ]`
	}
	return fmt.Sprintf(`P=? [ F<=%s "goal" ]`, formatTime(horizon))
}

// MTTAQuery is the mean time to attack: the expected years until the top
// event first holds.
func MTTAQuery() string {
	return fmt.Sprintf(`R{%q}=? [ F "goal" ]`, RewardTime)
}

// CompromisedTimeQuery is the expected time (years) the top event holds
// within the horizon — distinct from the hitting probability once patching
// countermeasures can revoke leaves.
func CompromisedTimeQuery(horizon float64) string {
	return fmt.Sprintf(`R{%q}=? [ C<=%s ]`, RewardCompromised, formatTime(horizon))
}
