package attacktree

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/csl"
	"repro/internal/cvss"
	"repro/internal/modular"
)

// explore compiles and explores a tree, failing the test on any error.
func explore(t *testing.T, tr *Tree, opts CompileOptions) (*Compiled, *modular.Explored) {
	t.Helper()
	c, err := Compile(tr, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ex, err := c.Model.Explore(modular.ExploreOpts{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	return c, ex
}

// transitions flattens the explored chain into "i->j@rate" strings.
func transitions(ex *modular.Explored) []string {
	var out []string
	for i := 0; i < ex.Chain.Rates.Rows; i++ {
		cols, vals := ex.Chain.Rates.Row(i)
		for k, j := range cols {
			out = append(out, fmt.Sprintf("%d->%d@%g", i, j, vals[k]))
		}
	}
	return out
}

// TestGateGoldenFragments pins the exact CTMC fragment each gate type
// lowers to: state vectors in exploration order, every transition with its
// rate, and the goal-label mask.
func TestGateGoldenFragments(t *testing.T) {
	cases := []struct {
		gate   string
		states [][]int
		trans  []string
		goal   []bool
	}{
		{
			// OR: both leaves race from the start; goal as soon as either
			// fires.
			gate:   GateOR,
			states: [][]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}},
			trans:  []string{"0->1@2", "0->2@3", "1->3@3", "2->3@2"},
			goal:   []bool{false, true, true, true},
		},
		{
			// AND: the same product chain, but the goal needs both.
			gate:   GateAND,
			states: [][]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}},
			trans:  []string{"0->1@2", "0->2@3", "1->3@3", "2->3@2"},
			goal:   []bool{false, false, false, true},
		},
		{
			// SAND: b is guard-disabled until a completes — a pure phase
			// chain, one state fewer.
			gate:   GateSAND,
			states: [][]int{{0, 0}, {1, 0}, {1, 1}},
			trans:  []string{"0->1@2", "1->2@3"},
			goal:   []bool{false, false, true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.gate, func(t *testing.T) {
			_, ex := explore(t, twoLeaf(tc.gate, 2, 3), CompileOptions{})
			if ex.N() != len(tc.states) {
				t.Fatalf("states = %d, want %d", ex.N(), len(tc.states))
			}
			for i, want := range tc.states {
				for v := range want {
					if ex.States[i][v] != want[v] {
						t.Fatalf("state %d = %v, want %v", i, ex.States[i], want)
					}
				}
			}
			if got := transitions(ex); strings.Join(got, " ") != strings.Join(tc.trans, " ") {
				t.Fatalf("transitions = %v, want %v", got, tc.trans)
			}
			mask, err := ex.LabelMask(LabelGoal)
			if err != nil {
				t.Fatal(err)
			}
			for i := range mask {
				if mask[i] != tc.goal[i] {
					t.Fatalf("goal mask = %v, want %v", mask, tc.goal)
				}
			}
		})
	}
}

// TestGateGoldenPRISM pins the PRISM source each gate lowers to — the
// human-auditable form of the same fragments.
func TestGateGoldenPRISM(t *testing.T) {
	goldens := map[string][]string{
		GateOR: {
			"module leaf_b\n  b : bool init false;\n  [] !(b) -> 3 : (b'=true);\nendmodule",
			`label "goal" = (a | b);`,
		},
		GateAND: {
			"module leaf_b\n  b : bool init false;\n  [] !(b) -> 3 : (b'=true);\nendmodule",
			`label "goal" = (a & b);`,
		},
		GateSAND: {
			// The sequencing guard is the whole point: b waits for a.
			"module leaf_b\n  b : bool init false;\n  [] (a & !(b)) -> 3 : (b'=true);\nendmodule",
			`label "goal" = (a & b);`,
		},
	}
	for gate, wants := range goldens {
		t.Run(gate, func(t *testing.T) {
			c, err := Compile(twoLeaf(gate, 2, 3), CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			src := c.Model.ExportPRISM()
			for _, want := range wants {
				if !strings.Contains(src, want) {
					t.Fatalf("PRISM export missing %q:\n%s", want, src)
				}
			}
		})
	}
}

// check parses and checks one synthesized query against a compiled tree at
// tight accuracy.
func check(t *testing.T, c *Compiled, ex *modular.Explored, query string) float64 {
	t.Helper()
	prop, err := csl.Parse(query, csl.Environment{Model: c.Model})
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	checker := csl.NewChecker(ex)
	checker.Accuracy = 1e-12
	res, err := checker.Check(prop)
	if err != nil {
		t.Fatalf("check %q: %v", query, err)
	}
	return res.Value
}

// TestTwoLeafORAnalytic is the acceptance cross-check: with CVSS-derived
// leaf rates η1, η2, the OR top event is the first arrival of two
// independent exponentials, so P(T ≤ t) = 1 − e^{−(η1+η2)t}. The checker
// must agree to 1e-9.
func TestTwoLeafORAnalytic(t *testing.T) {
	eta1 := cvss.MustParse("AV:N/AC:M/Au:N").Rate() // 7.2888
	eta2 := cvss.MustParse("AV:A/AC:L/Au:N").Rate() // 5.1579328
	tr := &Tree{Name: "or_analytic", Root: &Node{Name: "top", Gate: GateOR, Children: []*Node{
		{Name: "a", CVSS: "AV:N/AC:M/Au:N"},
		{Name: "b", CVSS: "AV:A/AC:L/Au:N"},
	}}}
	c, ex := explore(t, tr, CompileOptions{})
	if got := c.LeafRates["a"]; !almost(got, eta1, 1e-12) {
		t.Fatalf("leaf a rate = %v, want %v", got, eta1)
	}
	for _, horizon := range []float64{0.1, 0.5, 1} {
		got := check(t, c, ex, TopEventQuery(horizon))
		want := 1 - math.Exp(-(eta1+eta2)*horizon)
		if !almost(got, want, 1e-9) {
			t.Fatalf("P(top by %g) = %.12f, want %.12f (Δ=%g)", horizon, got, want, got-want)
		}
	}
	// MTTA of the race is 1/(η1+η2).
	if got, want := check(t, c, ex, MTTAQuery()), 1/(eta1+eta2); !almost(got, want, 1e-9) {
		t.Fatalf("MTTA = %.12f, want %.12f", got, want)
	}
}

// TestTwoLeafANDAnalytic: independent parallel progress, so
// P = (1−e^{−η1 t})(1−e^{−η2 t}).
func TestTwoLeafANDAnalytic(t *testing.T) {
	const eta1, eta2 = 2.25, 0.75
	c, ex := explore(t, twoLeaf(GateAND, eta1, eta2), CompileOptions{})
	for _, horizon := range []float64{0.25, 1, 2} {
		got := check(t, c, ex, TopEventQuery(horizon))
		want := (1 - math.Exp(-eta1*horizon)) * (1 - math.Exp(-eta2*horizon))
		if !almost(got, want, 1e-9) {
			t.Fatalf("P(top by %g) = %.12f, want %.12f", horizon, got, want)
		}
	}
}

// TestTwoLeafSANDAnalytic: sequenced phases form a hypoexponential, with
// CDF 1 − (η2 e^{−η1 t} − η1 e^{−η2 t})/(η2 − η1) and mean 1/η1 + 1/η2.
func TestTwoLeafSANDAnalytic(t *testing.T) {
	const eta1, eta2 = 3.0, 1.25
	c, ex := explore(t, twoLeaf(GateSAND, eta1, eta2), CompileOptions{})
	for _, horizon := range []float64{0.5, 1, 3} {
		got := check(t, c, ex, TopEventQuery(horizon))
		want := 1 - (eta2*math.Exp(-eta1*horizon)-eta1*math.Exp(-eta2*horizon))/(eta2-eta1)
		if !almost(got, want, 1e-9) {
			t.Fatalf("P(top by %g) = %.12f, want %.12f", horizon, got, want)
		}
	}
	if got, want := check(t, c, ex, MTTAQuery()), 1/eta1+1/eta2; !almost(got, want, 1e-9) {
		t.Fatalf("MTTA = %.12f, want %.12f", got, want)
	}
}

// TestCountermeasureScalesRate: applying a rate_factor-0 countermeasure on
// one OR leg reduces the top event to the other leg's exponential; the cost
// is accounted.
func TestCountermeasureScalesRate(t *testing.T) {
	tr := &Tree{Name: "cm", Root: &Node{Name: "top", Gate: GateOR, Children: []*Node{
		{Name: "a", Rate: rate(4), Countermeasure: &Countermeasure{Name: "kill_a", Cost: 7, RateFactor: 0}},
		{Name: "b", Rate: rate(1.5)},
	}}}
	c, ex := explore(t, tr, CompileOptions{Applied: []string{"kill_a"}})
	if c.Cost != 7 {
		t.Fatalf("cost = %v, want 7", c.Cost)
	}
	got := check(t, c, ex, TopEventQuery(1))
	want := 1 - math.Exp(-1.5)
	if !almost(got, want, 1e-9) {
		t.Fatalf("P = %.12f, want %.12f", got, want)
	}
	// Unapplied, the race is back on.
	c2, ex2 := explore(t, tr, CompileOptions{})
	if got, want := check(t, c2, ex2, TopEventQuery(1)), 1-math.Exp(-5.5); !almost(got, want, 1e-9) {
		t.Fatalf("unapplied P = %.12f, want %.12f", got, want)
	}
}

// TestPatchingCountermeasure: a single leaf with an applied patching
// countermeasure is a two-state birth–death chain; the expected compromised
// time within [0,t] has the closed form
// η/(η+μ) · (t + (e^{−(η+μ)t} − 1)/(η+μ)).
func TestPatchingCountermeasure(t *testing.T) {
	const eta, mu = 2, 5
	tr := &Tree{Name: "patch", Root: &Node{
		Name: "a", Rate: rate(eta),
		Countermeasure: &Countermeasure{Name: "ota", Cost: 3, RateFactor: 1, PatchRate: mu},
	}}
	c, ex := explore(t, tr, CompileOptions{Applied: []string{"ota"}})
	if ex.N() != 2 {
		t.Fatalf("states = %d, want 2", ex.N())
	}
	const horizon = 1.5
	got := check(t, c, ex, CompromisedTimeQuery(horizon))
	lam := eta + mu
	want := eta / float64(lam) * (horizon + (math.Exp(-float64(lam)*horizon)-1)/float64(lam))
	if !almost(got, want, 1e-8) {
		t.Fatalf("compromised time = %.12f, want %.12f", got, want)
	}
}

// TestZeroRateLeafUnreachable: a rate-0 leaf emits no attack command, so an
// AND over it never fires.
func TestZeroRateLeafUnreachable(t *testing.T) {
	c, ex := explore(t, twoLeaf(GateAND, 0, 3), CompileOptions{})
	if got := check(t, c, ex, TopEventQuery(5)); got != 0 {
		t.Fatalf("P = %v, want 0", got)
	}
}

// TestCompileSolveRoundTripRace drives concurrent compile → explore →
// check round trips over a shared tree — the data-race gate for the
// subsystem (runs under `make race`).
func TestCompileSolveRoundTripRace(t *testing.T) {
	tr := &Tree{Name: "race", Root: &Node{Name: "top", Gate: GateOR, Children: []*Node{
		{Name: "remote", Gate: GateSAND, Children: []*Node{
			{Name: "cellular", CVSS: "AV:N/AC:M/Au:N"},
			{Name: "lateral", CVSS: "AV:A/AC:H/Au:S"},
		}},
		{Name: "obd", CVSS: "AV:L/AC:L/Au:N",
			Countermeasure: &Countermeasure{Name: "lock", Cost: 2, RateFactor: 0.25}},
	}}}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		applied := []string{}
		if w%2 == 1 {
			applied = []string{"lock"}
		}
		go func(applied []string) {
			defer wg.Done()
			c, err := Compile(tr, CompileOptions{Applied: applied})
			if err != nil {
				errs <- err
				return
			}
			ex, err := c.Model.Explore(modular.ExploreOpts{})
			if err != nil {
				errs <- err
				return
			}
			prop, err := csl.Parse(TopEventQuery(1), csl.Environment{Model: c.Model})
			if err != nil {
				errs <- err
				return
			}
			res, err := csl.NewChecker(ex).Check(prop)
			if err != nil {
				errs <- err
				return
			}
			if res.Value <= 0 || res.Value >= 1 {
				errs <- fmt.Errorf("implausible top-event probability %v", res.Value)
			}
		}(applied)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
