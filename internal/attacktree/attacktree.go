// Package attacktree models attack-tree threat descriptions — the TARA
// lingua franca of automotive security work (Ebrahimi et al., PAPERS.md) —
// and compiles them into the same CTMC machinery the paper's architecture
// models use. A tree is a JSON document of AND/OR/SAND gates over leaf
// attack steps; each leaf carries either a CVSS v2 exploitability vector
// (lowered to a rate via the paper's Eqs. 11–12, `cvss.Vector.Rate`) or an
// explicit rate in events per year, plus an optional countermeasure
// annotation with a cost, a rate-scaling factor and a patch (repair) rate.
//
// Compile lowers the tree into a `modular.Model`: every leaf becomes a
// boolean birth variable with an exponential attack transition, OR gates
// become competing races, AND gates progress-chain products, and SAND gates
// sequenced phases whose later legs are guard-gated on the earlier ones.
// The compiled model exposes the "goal" label (top event reached) and the
// "time"/"compromised_time" reward structures, so the existing CSL checker,
// RobustSolve path and the secserved cache/shard tier answer attack-tree
// queries unchanged.
package attacktree

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/cvss"
)

// Gate kinds. A node with children must name one of these; a node without
// children is a leaf and must leave Gate empty or "leaf".
const (
	GateLeaf = "leaf"
	GateAND  = "and"
	GateOR   = "or"
	GateSAND = "sand"
)

// LabelGoal is the compiled model's top-event label: the root of the tree
// is satisfied.
const LabelGoal = "goal"

// Reward structure names in the compiled model.
const (
	// RewardTime accrues 1 per year until the top event — the structure
	// behind the MTTA query R{"time"}=? [ F "goal" ].
	RewardTime = "time"
	// RewardCompromised accrues 1 per year while the top event holds, so
	// R{"compromised_time"}=? [ C<=t ] is the expected compromised time
	// within a horizon (nonzero only when patches can revoke leaves).
	RewardCompromised = "compromised_time"
)

// Countermeasure annotates a leaf with a defence that can be switched on
// per analysis. Applying it multiplies the leaf's exploit rate by
// RateFactor and, when PatchRate is positive, adds a repair transition that
// revokes an achieved leaf at that rate.
type Countermeasure struct {
	Name string  `json:"name"`
	Cost float64 `json:"cost"`
	// RateFactor scales the leaf's attack rate when the countermeasure is
	// applied: 0 removes the attack step entirely, 1 leaves it unchanged.
	RateFactor float64 `json:"rate_factor"`
	// PatchRate, when positive, adds a repair transition (achieved →
	// not achieved) at this rate per year while the countermeasure is
	// applied — the patching dynamic of the paper's interface modules.
	PatchRate float64 `json:"patch_rate,omitempty"`
}

// Node is one vertex of an attack tree. Gates carry children; leaves carry
// a CVSS vector or an explicit rate.
type Node struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Gate is "and", "or" or "sand" for internal nodes ("leaf" or empty
	// for leaves).
	Gate string `json:"gate,omitempty"`
	// CVSS is a CVSS v2 exploitability vector ("AV:x/AC:y/Au:z"); the leaf
	// rate is η from the paper's Eqs. 11–12.
	CVSS string `json:"cvss,omitempty"`
	// Rate is an explicit attack rate in events per year, mutually
	// exclusive with CVSS.
	Rate           *float64        `json:"rate,omitempty"`
	Countermeasure *Countermeasure `json:"countermeasure,omitempty"`
	Children       []*Node         `json:"children,omitempty"`
}

// Tree is a named attack tree with a single top event at Root.
type Tree struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Root        *Node  `json:"root"`
}

// ErrBadTree wraps every schema-validation failure.
var ErrBadTree = errors.New("attacktree: invalid tree")

func badTreef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadTree, fmt.Sprintf(format, args...))
}

// Parse decodes and validates a JSON attack tree. Unknown fields are
// rejected so schema typos fail loudly instead of silently dropping a
// countermeasure or rate.
func Parse(data []byte) (*Tree, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var t Tree
	if err := dec.Decode(&t); err != nil {
		return nil, badTreef("decode: %v", err)
	}
	if dec.More() {
		return nil, badTreef("trailing data after tree document")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadFile reads and validates a tree from a JSON file.
func LoadFile(path string) (*Tree, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// identOK reports whether a name is usable as a model variable name.
func identOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Validate checks the tree's schema: unique identifier node names, gates
// with children, leaves with exactly one rate source, well-formed
// countermeasures. It is called by Parse; hand-built trees should call it
// before Compile.
func (t *Tree) Validate() error {
	if t == nil {
		return badTreef("nil tree")
	}
	if !identOK(t.Name) {
		return badTreef("tree name %q is not an identifier", t.Name)
	}
	if t.Root == nil {
		return badTreef("tree %q has no root", t.Name)
	}
	names := make(map[string]bool)
	cms := make(map[string]bool)
	return t.validateNode(t.Root, names, cms)
}

func (t *Tree) validateNode(n *Node, names, cms map[string]bool) error {
	if n == nil {
		return badTreef("nil node")
	}
	if !identOK(n.Name) {
		return badTreef("node name %q is not an identifier", n.Name)
	}
	if n.Name == LabelGoal {
		return badTreef("node name %q is reserved for the top-event label", LabelGoal)
	}
	if names[n.Name] {
		return badTreef("duplicate node name %q", n.Name)
	}
	names[n.Name] = true
	if len(n.Children) == 0 {
		if n.Gate != "" && n.Gate != GateLeaf {
			return badTreef("node %q: gate %q has no children", n.Name, n.Gate)
		}
		haveCVSS, haveRate := n.CVSS != "", n.Rate != nil
		if haveCVSS == haveRate {
			return badTreef("leaf %q must carry exactly one of cvss or rate", n.Name)
		}
		if haveCVSS {
			if _, err := cvss.Parse(n.CVSS); err != nil {
				return badTreef("leaf %q: %v", n.Name, err)
			}
		} else if *n.Rate < 0 {
			return badTreef("leaf %q: negative rate %g", n.Name, *n.Rate)
		}
		if cm := n.Countermeasure; cm != nil {
			if !identOK(cm.Name) {
				return badTreef("leaf %q: countermeasure name %q is not an identifier", n.Name, cm.Name)
			}
			if cms[cm.Name] {
				return badTreef("duplicate countermeasure name %q", cm.Name)
			}
			cms[cm.Name] = true
			if cm.Cost < 0 {
				return badTreef("countermeasure %q: negative cost %g", cm.Name, cm.Cost)
			}
			if cm.RateFactor < 0 || cm.RateFactor > 1 {
				return badTreef("countermeasure %q: rate_factor %g outside [0, 1]", cm.Name, cm.RateFactor)
			}
			if cm.PatchRate < 0 {
				return badTreef("countermeasure %q: negative patch_rate %g", cm.Name, cm.PatchRate)
			}
		}
		return nil
	}
	switch n.Gate {
	case GateAND, GateOR, GateSAND:
	case "", GateLeaf:
		return badTreef("node %q has children but no gate", n.Name)
	default:
		return badTreef("node %q: unknown gate %q (want and, or or sand)", n.Name, n.Gate)
	}
	if n.CVSS != "" || n.Rate != nil {
		return badTreef("gate %q must not carry cvss or rate", n.Name)
	}
	if n.Countermeasure != nil {
		return badTreef("gate %q must not carry a countermeasure (annotate a leaf)", n.Name)
	}
	for _, c := range n.Children {
		if err := t.validateNode(c, names, cms); err != nil {
			return err
		}
	}
	return nil
}

// CanonicalJSON returns the tree's deterministic encoding — the content the
// service cache tier keys on. Field order is fixed by the struct layout and
// the document is map-free, so re-marshalling the parsed form normalises
// whitespace, field order and defaulted fields.
func (t *Tree) CanonicalJSON() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(t)
}

// walk visits every node in deterministic preorder.
func (t *Tree) walk(fn func(n *Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// Leaves returns the leaf nodes in deterministic preorder.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.walk(func(n *Node) {
		if len(n.Children) == 0 {
			out = append(out, n)
		}
	})
	return out
}

// Countermeasures returns every countermeasure in the tree, sorted by name.
func (t *Tree) Countermeasures() []*Countermeasure {
	var out []*Countermeasure
	t.walk(func(n *Node) {
		if len(n.Children) == 0 && n.Countermeasure != nil {
			out = append(out, n.Countermeasure)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NormalizeApplied sorts and dedupes a countermeasure selection, rejecting
// names the tree does not define — the validation both the compiler and the
// service's request resolution share.
func (t *Tree) NormalizeApplied(names []string) ([]string, error) {
	known := make(map[string]bool)
	for _, cm := range t.Countermeasures() {
		known[cm.Name] = true
	}
	set := make(map[string]bool)
	for _, name := range names {
		if !known[name] {
			return nil, badTreef("unknown countermeasure %q", name)
		}
		set[name] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// LeafRate returns a leaf's base attack rate: explicit when given, else η
// from its CVSS vector (paper Eqs. 11–12).
func LeafRate(n *Node) float64 {
	if n.Rate != nil {
		return *n.Rate
	}
	v, err := cvss.Parse(n.CVSS)
	if err != nil {
		return 0 // unreachable on validated trees
	}
	return v.Rate()
}
