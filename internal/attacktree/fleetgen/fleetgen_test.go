package fleetgen

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/service"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, Count: 20}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 20 {
		t.Fatalf("count = %d, want 20", len(a))
	}
	for i := range a {
		ca, err := a[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ca, cb) {
			t.Fatalf("tree %d differs across identical seeds", i)
		}
	}
	// A different seed yields a different fleet.
	c, err := Generate(Spec{Seed: 43, Count: 20})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		ca, _ := a[i].CanonicalJSON()
		cc, _ := c[i].CanonicalJSON()
		if bytes.Equal(ca, cc) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed does not influence the fleet")
	}
}

func TestGenerateRespectsLeafCap(t *testing.T) {
	trees, err := Generate(Spec{Seed: 7, Count: 50, MaxLeaves: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		if n := len(tr.Leaves()); n == 0 || n > 6 {
			t.Fatalf("tree %s has %d leaves, want 1..6", tr.Name, n)
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	if _, err := Generate(Spec{Seed: 1}); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := Generate(Spec{Seed: 1, Count: 1, CountermeasureProb: 2}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

// TestFleetBatchSolves pushes a small generated fleet through the engine's
// batch path — the generator → batch solve round trip the secbench
// workload measures.
func TestFleetBatchSolves(t *testing.T) {
	reqs, err := Requests(Spec{Seed: 11, Count: 8, MaxLeaves: 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := service.NewEngine(service.EngineOptions{})
	for i, item := range e.RunBatch(context.Background(), reqs, 4) {
		if item.Err != nil {
			t.Fatalf("request %d: %v", i, item.Err)
		}
		tr := item.Outcome.Tree
		if tr == nil || tr.TopEventProbability < 0 || tr.TopEventProbability > 1 {
			t.Fatalf("request %d: implausible outcome %+v", i, tr)
		}
	}
}
