// Package fleetgen generates seeded randomized fleets of vehicle attack
// trees — the IoV-style heavy-traffic workload (Lauinger et al., PAPERS.md)
// for the distributed analysis service. A Spec is fully deterministic: the
// same seed always yields byte-identical trees, so fleets double as
// reproducible benchmark corpora (secbench's attacktree-fleet workload) and
// as batch load for a running secserved ring.
package fleetgen

import (
	"fmt"
	"math/rand"

	"repro/internal/attacktree"
	"repro/internal/service"
)

// Spec configures a fleet. The zero value is not valid: set Count.
type Spec struct {
	// Seed drives every random choice; equal specs generate equal fleets.
	Seed int64
	// Count is the number of vehicle trees to generate.
	Count int
	// MaxDepth bounds gate nesting (default 3).
	MaxDepth int
	// MaxBranch bounds children per gate (default 3, minimum 2).
	MaxBranch int
	// MaxLeaves caps attack steps per tree (default 9), bounding the
	// compiled state space at 2^MaxLeaves.
	MaxLeaves int
	// CountermeasureProb is the chance a leaf carries a countermeasure
	// (default 0.35).
	CountermeasureProb float64
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Count <= 0 {
		return s, fmt.Errorf("fleetgen: count must be positive, got %d", s.Count)
	}
	if s.MaxDepth <= 0 {
		s.MaxDepth = 3
	}
	if s.MaxBranch < 2 {
		s.MaxBranch = 3
	}
	if s.MaxLeaves <= 0 {
		s.MaxLeaves = 9
	}
	if s.CountermeasureProb == 0 {
		s.CountermeasureProb = 0.35
	}
	if s.CountermeasureProb < 0 || s.CountermeasureProb > 1 {
		return s, fmt.Errorf("fleetgen: countermeasure probability %g outside [0, 1]", s.CountermeasureProb)
	}
	return s, nil
}

// Attack-surface vocabulary for generated leaves: realistic automotive
// entry points with the CVSS v2 exploitability vectors the paper's Table 1
// interpretation assigns them.
var surfaces = []struct {
	name string
	cvss string
}{
	{"cellular_exploit", "AV:N/AC:M/Au:N"},
	{"wifi_hotspot", "AV:N/AC:L/Au:S"},
	{"bluetooth_pairing", "AV:A/AC:M/Au:N"},
	{"v2x_message", "AV:A/AC:H/Au:N"},
	{"tpms_spoof", "AV:A/AC:L/Au:N"},
	{"obd_dongle", "AV:L/AC:L/Au:N"},
	{"usb_media", "AV:L/AC:M/Au:N"},
	{"debug_port", "AV:L/AC:H/Au:S"},
	{"key_fob_relay", "AV:A/AC:M/Au:S"},
	{"ota_tamper", "AV:N/AC:H/Au:M"},
}

var defences = []struct {
	name       string
	cost       float64
	rateFactor float64
	patchRate  float64
}{
	{"firewall", 15, 0.2, 0},
	{"ids", 20, 0.5, 2},
	{"code_signing", 25, 0, 0},
	{"secure_boot", 30, 0.1, 0},
	{"session_auth", 10, 0.4, 0},
	{"ota_patching", 12, 1, 6},
}

// Generate builds the fleet. Trees are named vehicle_<i> and are valid by
// construction (the generator still validates each one as a guard against
// regressions).
func Generate(spec Spec) ([]*attacktree.Tree, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	trees := make([]*attacktree.Tree, 0, spec.Count)
	for i := 0; i < spec.Count; i++ {
		g := &gen{spec: spec, rng: rng}
		t := &attacktree.Tree{
			Name: fmt.Sprintf("vehicle_%04d", i),
			Root: g.gate(1),
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("fleetgen: generated invalid tree %s: %w", t.Name, err)
		}
		trees = append(trees, t)
	}
	return trees, nil
}

type gen struct {
	spec   Spec
	rng    *rand.Rand
	leaves int
	nodes  int
}

// gate emits a random gate node; its children are further gates (while
// depth and the leaf budget allow) or leaves.
func (g *gen) gate(depth int) *attacktree.Node {
	g.nodes++
	kinds := []string{attacktree.GateOR, attacktree.GateOR, attacktree.GateAND, attacktree.GateSAND}
	n := &attacktree.Node{
		Name: fmt.Sprintf("stage_%d", g.nodes),
		Gate: kinds[g.rng.Intn(len(kinds))],
	}
	width := 2 + g.rng.Intn(g.spec.MaxBranch-1)
	for c := 0; c < width; c++ {
		remaining := g.spec.MaxLeaves - g.leaves
		if remaining <= 0 {
			break
		}
		// Recurse only while a subtree can still hold at least two leaves.
		if depth < g.spec.MaxDepth && remaining >= 2 && g.rng.Float64() < 0.4 {
			n.Children = append(n.Children, g.gate(depth+1))
		} else {
			n.Children = append(n.Children, g.leaf())
		}
	}
	// A gate needs children even when the leaf budget ran dry mid-loop.
	if len(n.Children) == 0 {
		n.Children = append(n.Children, g.leaf())
	}
	if len(n.Children) == 1 && n.Gate != attacktree.GateOR {
		n.Gate = attacktree.GateOR // degenerate gate; keep semantics obvious
	}
	return n
}

func (g *gen) leaf() *attacktree.Node {
	g.leaves++
	s := surfaces[g.rng.Intn(len(surfaces))]
	n := &attacktree.Node{
		Name: fmt.Sprintf("%s_%d", s.name, g.leaves),
		CVSS: s.cvss,
	}
	if g.rng.Float64() < g.spec.CountermeasureProb {
		d := defences[g.rng.Intn(len(defences))]
		n.Countermeasure = &attacktree.Countermeasure{
			Name:       fmt.Sprintf("%s_%d", d.name, g.leaves),
			Cost:       d.cost,
			RateFactor: d.rateFactor,
			PatchRate:  d.patchRate,
		}
	}
	return n
}

// Requests renders the fleet as inline attack-tree analysis requests — the
// batch load shape Engine.RunBatch and a secserved ring consume. Horizon 0
// defaults to 1 year server-side.
func Requests(spec Spec, horizon float64) ([]*service.AnalysisRequest, error) {
	trees, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	reqs := make([]*service.AnalysisRequest, 0, len(trees))
	for _, t := range trees {
		inline, err := t.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, &service.AnalysisRequest{
			Kind:    service.KindAttackTree,
			Inline:  inline,
			Horizon: horizon,
		})
	}
	return reqs, nil
}
