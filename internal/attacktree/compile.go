package attacktree

import (
	"sort"
	"strings"

	"repro/internal/modular"
)

// CompileOptions selects the analysis variant of a tree.
type CompileOptions struct {
	// Applied lists the countermeasures to switch on (sorted and deduped by
	// NormalizeApplied; Compile normalises unsorted input itself).
	Applied []string
}

// Canonical renders the options deterministically for cache keying.
func (o CompileOptions) Canonical() string {
	applied := append([]string(nil), o.Applied...)
	sort.Strings(applied)
	return "cm=" + strings.Join(applied, ",")
}

// Compiled is a lowered attack tree: the CTMC-generating modular model plus
// the metadata ranking and reporting need.
type Compiled struct {
	Tree    *Tree
	Options CompileOptions
	Model   *modular.Model
	// Goal is the top-event predicate (also installed as the "goal" label).
	Goal modular.Expr
	// LeafRates maps each leaf to its effective attack rate after
	// countermeasure scaling.
	LeafRates map[string]float64
	// Cost is the summed cost of the applied countermeasures.
	Cost float64
}

// Compile lowers a validated tree into a modular CTMC model. Every leaf
// becomes a boolean variable with an exponential attack command; gate
// semantics are expressed through guards over the leaf variables:
//
//   - OR: children race — the gate holds as soon as any child does.
//   - AND: children progress independently in parallel (a product of
//     birth chains); the gate holds when all do.
//   - SAND: children are sequenced — the leaves under child i+1 are
//     guard-disabled until child i is satisfied.
//
// An applied countermeasure scales its leaf's rate by RateFactor and, when
// PatchRate is positive, adds a repair command revoking the leaf.
func Compile(t *Tree, opts CompileOptions) (*Compiled, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	applied, err := t.NormalizeApplied(opts.Applied)
	if err != nil {
		return nil, err
	}
	appliedSet := make(map[string]bool, len(applied))
	for _, name := range applied {
		appliedSet[name] = true
	}

	c := &Compiled{
		Tree:      t,
		Options:   CompileOptions{Applied: applied},
		Model:     modular.NewModel(t.Name),
		LeafRates: make(map[string]float64),
	}

	// Declare one boolean variable per leaf, in deterministic preorder, so
	// the state layout (and therefore golden fragments) is stable.
	vars := make(map[string]modular.VarRef)
	for _, leaf := range t.Leaves() {
		ref, err := c.Model.AddVar(modular.VarDecl{
			Name:   leaf.Name,
			Module: "leaf_" + leaf.Name,
			IsBool: true,
		})
		if err != nil {
			return nil, err
		}
		vars[leaf.Name] = ref
	}

	// satisfied builds the gate predicate of a subtree.
	var satisfied func(n *Node) modular.Expr
	satisfied = func(n *Node) modular.Expr {
		if len(n.Children) == 0 {
			return vars[n.Name]
		}
		exprs := make([]modular.Expr, len(n.Children))
		for i, child := range n.Children {
			exprs[i] = satisfied(child)
		}
		if n.Gate == GateOR {
			return modular.Or(exprs...)
		}
		return modular.And(exprs...) // AND and SAND agree on the predicate
	}

	// lower threads the SAND sequencing guard down the tree and emits the
	// leaf commands. enable == nil means unconditionally enabled.
	var lower func(n *Node, enable modular.Expr) error
	lower = func(n *Node, enable modular.Expr) error {
		if len(n.Children) == 0 {
			return c.lowerLeaf(n, vars[n.Name], enable, appliedSet)
		}
		for i, child := range n.Children {
			childEnable := enable
			if n.Gate == GateSAND && i > 0 {
				// Phase i is armed only once phases 0..i-1 are complete.
				prior := make([]modular.Expr, 0, i+1)
				if enable != nil {
					prior = append(prior, enable)
				}
				for _, done := range n.Children[:i] {
					prior = append(prior, satisfied(done))
				}
				childEnable = modular.And(prior...)
			}
			if err := lower(child, childEnable); err != nil {
				return err
			}
		}
		return nil
	}
	if err := lower(t.Root, nil); err != nil {
		return nil, err
	}

	goal := satisfied(t.Root)
	c.Goal = goal
	c.Model.SetLabel(LabelGoal, goal)
	// Per-node labels let ad-hoc CSL properties address intermediate gates
	// and leaves by name ('"telematics_breach"').
	t.walk(func(n *Node) {
		c.Model.SetLabel(n.Name, satisfied(n))
	})
	c.Model.AddReward(RewardTime, modular.Reward{
		Guard: modular.Not(goal),
		Value: modular.DoubleLit(1),
	})
	c.Model.AddReward(RewardCompromised, modular.Reward{
		Guard: goal,
		Value: modular.DoubleLit(1),
	})

	for _, cm := range t.Countermeasures() {
		if appliedSet[cm.Name] {
			c.Cost += cm.Cost
		}
	}

	c.Model.SimplifyAll()
	if err := c.Model.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// lowerLeaf emits the attack (and, under an applied patching
// countermeasure, repair) commands for one leaf.
func (c *Compiled) lowerLeaf(n *Node, ref modular.VarRef, enable modular.Expr, applied map[string]bool) error {
	rate := LeafRate(n)
	patch := 0.0
	if cm := n.Countermeasure; cm != nil && applied[cm.Name] {
		rate *= cm.RateFactor
		patch = cm.PatchRate
	}
	c.LeafRates[n.Name] = rate
	mod := c.Model.AddModule("leaf_" + n.Name)
	if rate > 0 {
		guard := modular.Expr(modular.Not(ref))
		if enable != nil {
			guard = modular.And(enable, guard)
		}
		mod.AddCommand(modular.Command{
			Guard: guard,
			Updates: []modular.Update{{
				Rate:    modular.DoubleLit(rate),
				Assigns: []modular.Assign{{Var: ref.Index, Expr: modular.BoolLit(true)}},
			}},
		})
	}
	if patch > 0 {
		mod.AddCommand(modular.Command{
			Guard: ref,
			Updates: []modular.Update{{
				Rate:    modular.DoubleLit(patch),
				Assigns: []modular.Assign{{Var: ref.Index, Expr: modular.BoolLit(false)}},
			}},
		})
	}
	return nil
}
