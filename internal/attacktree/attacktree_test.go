package attacktree

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func rate(v float64) *float64 { return &v }

// twoLeaf builds a minimal two-leaf tree under the given gate.
func twoLeaf(gate string, r1, r2 float64) *Tree {
	return &Tree{
		Name: "g_" + gate,
		Root: &Node{Name: "top", Gate: gate, Children: []*Node{
			{Name: "a", Rate: rate(r1)},
			{Name: "b", Rate: rate(r2)},
		}},
	}
}

func TestParseValid(t *testing.T) {
	doc := `{
		"name": "demo",
		"root": {
			"name": "top", "gate": "or",
			"children": [
				{"name": "remote", "gate": "sand", "children": [
					{"name": "cellular", "cvss": "AV:N/AC:M/Au:N",
					 "countermeasure": {"name": "firewall", "cost": 10, "rate_factor": 0.2}},
					{"name": "lateral", "cvss": "AV:A/AC:H/Au:S"}
				]},
				{"name": "physical", "rate": 0.5}
			]
		}
	}`
	tr, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := len(tr.Leaves()); got != 3 {
		t.Fatalf("leaves = %d, want 3", got)
	}
	cms := tr.Countermeasures()
	if len(cms) != 1 || cms[0].Name != "firewall" {
		t.Fatalf("countermeasures = %+v, want [firewall]", cms)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", `{`, "decode"},
		{"unknown field", `{"name":"t","root":{"name":"a","rate":1,"bogus":1}}`, "decode"},
		{"trailing data", `{"name":"t","root":{"name":"a","rate":1}} {}`, "trailing"},
		{"no root", `{"name":"t"}`, "no root"},
		{"bad tree name", `{"name":"two words","root":{"name":"a","rate":1}}`, "not an identifier"},
		{"bad node name", `{"name":"t","root":{"name":"a b","rate":1}}`, "not an identifier"},
		{"reserved goal", `{"name":"t","root":{"name":"goal","rate":1}}`, "reserved"},
		{"dup node names", `{"name":"t","root":{"name":"g","gate":"or","children":[{"name":"a","rate":1},{"name":"a","rate":2}]}}`, "duplicate node"},
		{"gate without children", `{"name":"t","root":{"name":"g","gate":"and"}}`, "no children"},
		{"children without gate", `{"name":"t","root":{"name":"g","children":[{"name":"a","rate":1},{"name":"b","rate":1}]}}`, "no gate"},
		{"unknown gate", `{"name":"t","root":{"name":"g","gate":"xor","children":[{"name":"a","rate":1},{"name":"b","rate":1}]}}`, "unknown gate"},
		{"leaf without rate source", `{"name":"t","root":{"name":"a"}}`, "exactly one"},
		{"leaf with both", `{"name":"t","root":{"name":"a","rate":1,"cvss":"AV:N/AC:L/Au:N"}}`, "exactly one"},
		{"bad cvss", `{"name":"t","root":{"name":"a","cvss":"AV:N/AC:L"}}`, "cvss"},
		{"negative rate", `{"name":"t","root":{"name":"a","rate":-1}}`, "negative rate"},
		{"gate with rate", `{"name":"t","root":{"name":"g","gate":"or","rate":1,"children":[{"name":"a","rate":1},{"name":"b","rate":1}]}}`, "must not carry"},
		{"gate with countermeasure", `{"name":"t","root":{"name":"g","gate":"or","countermeasure":{"name":"c","cost":1,"rate_factor":0.5},"children":[{"name":"a","rate":1},{"name":"b","rate":1}]}}`, "annotate a leaf"},
		{"dup countermeasure", `{"name":"t","root":{"name":"g","gate":"or","children":[{"name":"a","rate":1,"countermeasure":{"name":"c","cost":1,"rate_factor":0.5}},{"name":"b","rate":1,"countermeasure":{"name":"c","cost":1,"rate_factor":0.5}}]}}`, "duplicate countermeasure"},
		{"rate_factor above one", `{"name":"t","root":{"name":"a","rate":1,"countermeasure":{"name":"c","cost":1,"rate_factor":1.5}}}`, "rate_factor"},
		{"negative cost", `{"name":"t","root":{"name":"a","rate":1,"countermeasure":{"name":"c","cost":-1,"rate_factor":0.5}}}`, "negative cost"},
		{"negative patch", `{"name":"t","root":{"name":"a","rate":1,"countermeasure":{"name":"c","cost":1,"rate_factor":0.5,"patch_rate":-2}}}`, "patch_rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if !errors.Is(err, ErrBadTree) {
				t.Fatalf("error %v does not wrap ErrBadTree", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCanonicalJSONNormalises(t *testing.T) {
	compact := `{"name":"t","root":{"name":"top","gate":"or","children":[{"name":"a","rate":1},{"name":"b","cvss":"AV:N/AC:L/Au:N"}]}}`
	spaced := `{
		"root": { "gate": "or", "name": "top", "children": [
			{"rate": 1, "name": "a"},
			{"cvss": "AV:N/AC:L/Au:N", "name": "b"}
		]},
		"name": "t"
	}`
	t1, err := Parse([]byte(compact))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Parse([]byte(spaced))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := t1.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := t2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonical forms differ:\n%s\n%s", c1, c2)
	}
}

func TestNormalizeApplied(t *testing.T) {
	tr := &Tree{Name: "t", Root: &Node{Name: "top", Gate: "or", Children: []*Node{
		{Name: "a", Rate: rate(1), Countermeasure: &Countermeasure{Name: "fw", Cost: 1, RateFactor: 0.5}},
		{Name: "b", Rate: rate(1), Countermeasure: &Countermeasure{Name: "ids", Cost: 2, RateFactor: 0.1}},
	}}}
	got, err := tr.NormalizeApplied([]string{"ids", "fw", "ids"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "fw" || got[1] != "ids" {
		t.Fatalf("NormalizeApplied = %v, want [fw ids]", got)
	}
	if _, err := tr.NormalizeApplied([]string{"nope"}); err == nil {
		t.Fatal("unknown countermeasure accepted")
	}
}

func TestLeafRateFromCVSS(t *testing.T) {
	// AV:N/AC:M/Au:N: σ = 20·1·0.61·0.704 = 8.5888, η = 7.2888 (Eqs. 11–12).
	n := &Node{Name: "x", CVSS: "AV:N/AC:M/Au:N"}
	if got, want := LeafRate(n), 20*1.0*0.61*0.704-1.3; !almost(got, want, 1e-12) {
		t.Fatalf("LeafRate = %v, want %v", got, want)
	}
}

func almost(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
