package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/modular"
	"repro/internal/transform"
)

// AttackStep is one transition of the most probable attack path: the state
// change, its rate, and the embedded-chain probability of taking it.
type AttackStep struct {
	// Description names the component event, e.g. "exploit 3G interface on
	// NET" or "break protection of m".
	Description string
	Rate        float64
	Probability float64
	// State is the state vector reached after the step, rendered for
	// display.
	State string
}

// AttackPath is the most probable exploit sequence from the secure initial
// state to a state violating the analysed security category — the paper's
// Figure-1 narrative ("the telematics unit is hacked, then …") recovered
// automatically from the model.
type AttackPath struct {
	Steps []AttackStep
	// Probability is the product of the embedded-chain step probabilities:
	// the chance that, jump for jump, the system takes exactly this route.
	Probability float64
}

// ErrNoAttackPath is returned when no violated state is reachable.
var ErrNoAttackPath = errors.New("core: no attack path to a violated state")

// MostProbableAttackPath finds the maximum-probability path (over the
// embedded jump chain) from the initial state to any violated state, via
// Dijkstra on −log probabilities.
func (a Analyzer) MostProbableAttackPath(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection) (*AttackPath, error) {
	a = a.withDefaults()
	res, err := transform.Build(ar, msgName, a.options(cat, prot))
	if err != nil {
		return nil, err
	}
	ex, err := res.Model.Explore(modular.ExploreOpts{MaxStates: a.MaxStates})
	if err != nil {
		return nil, err
	}
	violated, err := ex.LabelMask(transform.LabelViolated)
	if err != nil {
		return nil, err
	}
	chain := ex.Chain
	n := chain.N()

	// Dijkstra over edge weights −log(rate_ij / exit_i).
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	start := ex.InitIndex()
	dist[start] = 0
	pq := &pathHeap{{node: start, dist: 0}}
	visited := make([]bool, n)
	goal := -1
	for pq.Len() > 0 {
		item := heap.Pop(pq).(pathItem)
		u := item.node
		if visited[u] {
			continue
		}
		visited[u] = true
		if violated[u] {
			goal = u
			break
		}
		if chain.Exit[u] == 0 {
			continue
		}
		cols, vals := chain.Rates.Row(u)
		for k, v := range cols {
			p := vals[k] / chain.Exit[u]
			if p <= 0 || visited[v] {
				continue
			}
			w := item.dist - math.Log(p)
			if w < dist[v] {
				dist[v] = w
				prev[v] = u
				heap.Push(pq, pathItem{node: v, dist: w})
			}
		}
	}
	if goal < 0 {
		return nil, fmt.Errorf("%w (%s, %s, %s)", ErrNoAttackPath, ar.Name, cat, prot)
	}

	// Reconstruct and describe.
	var order []int
	for v := goal; v != -1; v = prev[v] {
		order = append(order, v)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	path := &AttackPath{Probability: math.Exp(-dist[goal])}
	for k := 1; k < len(order); k++ {
		from, to := order[k-1], order[k]
		rate := chain.Rates.At(from, to)
		path.Steps = append(path.Steps, AttackStep{
			Description: describeTransition(res.Model, ex.States[from], ex.States[to]),
			Rate:        rate,
			Probability: rate / chain.Exit[from],
			State:       res.Model.FormatState(ex.States[to]),
		})
	}
	return path, nil
}

// describeTransition names the state change in component terms.
func describeTransition(m *modular.Model, from, to []int) string {
	var parts []string
	for i := range from {
		if from[i] == to[i] {
			continue
		}
		name := m.Vars[i].Name
		switch {
		case strings.HasPrefix(name, "x_"):
			rest := strings.TrimPrefix(name, "x_")
			if to[i] > from[i] {
				parts = append(parts, fmt.Sprintf("exploit interface %s (now %d)", rest, to[i]))
			} else {
				parts = append(parts, fmt.Sprintf("patch interface %s (now %d)", rest, to[i]))
			}
		case strings.HasPrefix(name, "bg_"):
			if to[i] > from[i] {
				parts = append(parts, fmt.Sprintf("exploit bus guardian of %s", strings.TrimPrefix(name, "bg_")))
			} else {
				parts = append(parts, fmt.Sprintf("patch bus guardian of %s", strings.TrimPrefix(name, "bg_")))
			}
		case strings.HasPrefix(name, "prot_"):
			if to[i] < from[i] {
				parts = append(parts, fmt.Sprintf("break protection of %s", strings.TrimPrefix(name, "prot_")))
			} else {
				parts = append(parts, fmt.Sprintf("re-key protection of %s", strings.TrimPrefix(name, "prot_")))
			}
		default:
			parts = append(parts, fmt.Sprintf("%s: %d→%d", name, from[i], to[i]))
		}
	}
	if len(parts) == 0 {
		return "(no state change)"
	}
	return strings.Join(parts, ", ")
}

type pathItem struct {
	node int
	dist float64
}

type pathHeap []pathItem

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(pathItem)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// String renders the path as a numbered exploit narrative.
func (p *AttackPath) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "%2d. %-55s rate %-6.3g p=%.3f\n", i+1, s.Description, s.Rate, s.Probability)
	}
	fmt.Fprintf(&b, "    path probability (jump chain): %.3g\n", p.Probability)
	return b.String()
}
