package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/linalg"
	"repro/internal/modular"
	"repro/internal/sim"
	"repro/internal/transform"
)

// SecurityMetrics extends the headline exploitable-time number with the
// episode-level quantities decision makers ask about: how long until the
// first incident, and how many incidents per year.
type SecurityMetrics struct {
	// ExploitableTimeFraction is the paper's metric (as in Result).
	ExploitableTimeFraction float64
	// MeanTimeToViolation is the expected time (years) until the message's
	// security is violated for the first time; +Inf when violation is not
	// almost-sure (e.g. a FlexRay guardian that can never be exploited).
	MeanTimeToViolation float64
	// ViolationFrequency is the expected number of violation episodes
	// (secure → violated crossings) within the horizon.
	ViolationFrequency float64
	// FirstViolationProbability is P[violated at least once within the
	// horizon].
	FirstViolationProbability float64
}

// Metrics computes the episode-level security metrics for one
// architecture / message / category / protection combination.
func (a Analyzer) Metrics(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection) (*SecurityMetrics, error) {
	a = a.withDefaults()
	res, err := transform.Build(ar, msgName, a.options(cat, prot))
	if err != nil {
		return nil, err
	}
	ex, err := res.Model.Explore(modular.ExploreOpts{MaxStates: a.MaxStates})
	if err != nil {
		return nil, err
	}
	violated, err := ex.LabelMask(transform.LabelViolated)
	if err != nil {
		return nil, err
	}
	chain := ex.Chain
	init := ex.InitDistribution()

	frac, err := chain.ExpectedTimeFraction(init, violated, a.Horizon, a.Accuracy)
	if err != nil {
		return nil, err
	}
	first, err := chain.TimeBoundedReachability(init, violated, a.Horizon, a.Accuracy)
	if err != nil {
		return nil, err
	}
	// Mean time to first violation: expected accumulated time (reward 1
	// everywhere) until a violated state is reached.
	ones := linalg.NewVector(chain.N())
	ones.Fill(1)
	mttv, err := chain.ReachabilityReward(init, ones, violated)
	if err != nil {
		return nil, fmt.Errorf("core: mean time to violation: %w", err)
	}
	// Violation frequency: expected number of secure → violated crossings
	// in [0, horizon]. The crossing intensity from a secure state i is
	// Σ_{j violated} R(i,j), so the expected count is the cumulative reward
	// of that intensity.
	intensity := linalg.NewVector(chain.N())
	for i := 0; i < chain.N(); i++ {
		if violated[i] {
			continue
		}
		cols, vals := chain.Rates.Row(i)
		for k, j := range cols {
			if violated[j] {
				intensity[i] += vals[k]
			}
		}
	}
	freq, err := chain.CumulativeReward(init, intensity, a.Horizon, a.Accuracy)
	if err != nil {
		return nil, fmt.Errorf("core: violation frequency: %w", err)
	}
	return &SecurityMetrics{
		ExploitableTimeFraction:   frac,
		MeanTimeToViolation:       mttv,
		ViolationFrequency:        freq,
		FirstViolationProbability: first,
	}, nil
}

// TestViolationProbability statistically tests the hypothesis
// P[message violated at least once within the horizon] ≥ theta using the
// Gillespie simulator's sequential probability ratio test — the
// simulation-based verification backend, independent of uniformisation.
// seed makes the run reproducible.
func (a Analyzer) TestViolationProbability(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection, theta float64, seed int64, opts sim.SPRTOptions) (sim.SPRTResult, error) {
	a = a.withDefaults()
	res, err := transform.Build(ar, msgName, a.options(cat, prot))
	if err != nil {
		return sim.SPRTResult{}, err
	}
	ex, err := res.Model.Explore(modular.ExploreOpts{MaxStates: a.MaxStates})
	if err != nil {
		return sim.SPRTResult{}, err
	}
	violated, err := ex.LabelMask(transform.LabelViolated)
	if err != nil {
		return sim.SPRTResult{}, err
	}
	s := sim.New(ex.Chain, seed)
	return s.TestReachabilityWithin(ex.InitIndex(), violated, a.Horizon, theta, opts)
}
