package core

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/transform"
)

func TestUncertaintyBasics(t *testing.T) {
	an := Analyzer{NMax: 1}
	u, err := an.Uncertainty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted,
		UncertaintyOptions{Samples: 20, Spread: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Samples != 20 {
		t.Fatalf("samples = %d", u.Samples)
	}
	// The nominal value must lie within the sampled spread.
	if !(u.P05 <= u.Nominal && u.Nominal <= u.P95) {
		t.Fatalf("nominal %v outside [%v, %v]", u.Nominal, u.P05, u.P95)
	}
	if !(u.P05 <= u.P50 && u.P50 <= u.P95) {
		t.Fatalf("quantiles out of order: %v %v %v", u.P05, u.P50, u.P95)
	}
	if u.Mean <= 0 || u.Mean >= 1 {
		t.Fatalf("mean = %v", u.Mean)
	}
}

func TestUncertaintyReproducible(t *testing.T) {
	an := Analyzer{NMax: 1}
	opts := UncertaintyOptions{Samples: 10, Seed: 42}
	a, err := an.Uncertainty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := an.Uncertainty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.P95 != b.P95 {
		t.Fatal("same seed produced different studies")
	}
}

func TestUncertaintyWiderSpreadWiderInterval(t *testing.T) {
	an := Analyzer{NMax: 1}
	narrow, err := an.Uncertainty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted,
		UncertaintyOptions{Samples: 30, Spread: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := an.Uncertainty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted,
		UncertaintyOptions{Samples: 30, Spread: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if (wide.P95 - wide.P05) <= (narrow.P95 - narrow.P05) {
		t.Fatalf("spread 1.0 interval [%v,%v] not wider than spread 0.1 [%v,%v]",
			wide.P05, wide.P95, narrow.P05, narrow.P95)
	}
}

// TestUncertaintyOrderingRobust: the headline architecture ordering
// (A3 ≪ A1) must survive ±50 % rate uncertainty — A3's 95th percentile
// stays below A1's 5th percentile.
func TestUncertaintyOrderingRobust(t *testing.T) {
	an := Analyzer{NMax: 1}
	opts := UncertaintyOptions{Samples: 25, Spread: 0.5, Seed: 3}
	u1, err := an.Uncertainty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, opts)
	if err != nil {
		t.Fatal(err)
	}
	u3, err := an.Uncertainty(arch.Architecture3(), arch.MessageM,
		transform.Availability, transform.Unencrypted, opts)
	if err != nil {
		t.Fatal(err)
	}
	if u3.P95 >= u1.P05 {
		t.Fatalf("ordering not robust: A3 P95 %v vs A1 P05 %v", u3.P95, u1.P05)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	if q := quantile(data, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantile(data, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := quantile(data, 0.5); q != 3 {
		t.Fatalf("q50 = %v", q)
	}
	if q := quantile(data, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}
