package core

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/modular"
	"repro/internal/transform"
)

// TimePoint is one point of a violated-over-time curve.
type TimePoint struct {
	// T is the sampling time in years.
	T float64
	// ViolatedProbability is P[message violated at time T] (instantaneous).
	ViolatedProbability float64
	// EverViolated is P[violated at least once within T].
	EverViolated float64
	// CumulativeFraction is the expected fraction of [0, T] spent violated.
	CumulativeFraction float64
}

// TimeSeries samples how the message's exposure develops over a vehicle's
// life: the instantaneous violation probability, the first-violation
// probability and the cumulated exploitable-time fraction at each sampling
// time. Times must be positive and ascending.
func (a Analyzer) TimeSeries(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection, times []float64) ([]TimePoint, error) {
	a = a.withDefaults()
	if len(times) == 0 {
		return nil, fmt.Errorf("core: no sampling times")
	}
	if !sort.Float64sAreSorted(times) {
		return nil, fmt.Errorf("core: sampling times must be ascending")
	}
	if times[0] <= 0 {
		return nil, fmt.Errorf("core: sampling times must be positive, got %v", times[0])
	}
	res, err := transform.Build(ar, msgName, a.options(cat, prot))
	if err != nil {
		return nil, err
	}
	ex, err := res.Model.Explore(modular.ExploreOpts{MaxStates: a.MaxStates})
	if err != nil {
		return nil, err
	}
	mask, err := ex.LabelMask(transform.LabelViolated)
	if err != nil {
		return nil, err
	}
	init := ex.InitDistribution()
	out := make([]TimePoint, 0, len(times))
	for _, t := range times {
		pi, err := ex.Chain.Transient(init, t, a.Accuracy)
		if err != nil {
			return nil, err
		}
		var inst float64
		for i, m := range mask {
			if m {
				inst += pi[i]
			}
		}
		ever, err := ex.Chain.TimeBoundedReachability(init, mask, t, a.Accuracy)
		if err != nil {
			return nil, err
		}
		frac, err := ex.Chain.ExpectedTimeFraction(init, mask, t, a.Accuracy)
		if err != nil {
			return nil, err
		}
		out = append(out, TimePoint{
			T:                   t,
			ViolatedProbability: inst,
			EverViolated:        ever,
			CumulativeFraction:  frac,
		})
	}
	return out, nil
}
