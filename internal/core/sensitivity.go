package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/transform"
)

// SensitivityResult quantifies how strongly the message's exploitable time
// reacts to one component rate: the elasticity
// ∂ log(exploitable time) / ∂ log(rate), estimated by a central finite
// difference on a ±20 % perturbation. Negative values mean hardening the
// parameter (raising a patch rate) helps; positive values mean the
// parameter feeds the exposure (exploit rates).
type SensitivityResult struct {
	Component string
	// Param is "patch" (ECU patch rate) or "exploit:<bus>" (interface
	// exploitation rate).
	Param      string
	Rate       float64
	Elasticity float64
}

// Sensitivities ranks every ECU patch rate and every interface exploit rate
// by the magnitude of its elasticity — the quantitative form of the paper's
// question "how much effort should be invested in the consideration of
// security during implementation of specific components?". Most influential
// first.
func (a Analyzer) Sensitivities(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection) ([]SensitivityResult, error) {
	a.SkipSteadyState = true
	base, err := a.Analyze(ar, msgName, cat, prot)
	if err != nil {
		return nil, err
	}
	if base.TimeFraction <= 0 {
		return nil, fmt.Errorf("core: baseline exploitable time is zero; elasticities undefined")
	}
	const h = 0.2 // ±20 % perturbation
	evalAt := func(mutate func(c *arch.Architecture, factor float64)) (float64, error) {
		lo := ar.Clone()
		mutate(lo, 1-h)
		rlo, err := a.Analyze(lo, msgName, cat, prot)
		if err != nil {
			return 0, err
		}
		hi := ar.Clone()
		mutate(hi, 1+h)
		rhi, err := a.Analyze(hi, msgName, cat, prot)
		if err != nil {
			return 0, err
		}
		if rlo.TimeFraction <= 0 || rhi.TimeFraction <= 0 {
			return 0, nil
		}
		// Central difference in log-log space.
		return (math.Log(rhi.TimeFraction) - math.Log(rlo.TimeFraction)) /
			(math.Log(1+h) - math.Log(1-h)), nil
	}

	var out []SensitivityResult
	for i := range ar.ECUs {
		e := &ar.ECUs[i]
		name := e.Name
		patchRate, err := e.EffectivePatchRate()
		if err != nil {
			return nil, err
		}
		el, err := evalAt(func(c *arch.Architecture, f float64) {
			c.ECU(name).PatchRate = patchRate * f
		})
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity of %s patch rate: %w", name, err)
		}
		out = append(out, SensitivityResult{
			Component: name, Param: "patch", Rate: patchRate, Elasticity: el,
		})
		for _, ifc := range e.Interfaces {
			bus := ifc.Bus
			rate := ifc.ExploitRate
			if rate <= 0 {
				continue
			}
			el, err := evalAt(func(c *arch.Architecture, f float64) {
				ce := c.ECU(name)
				for k := range ce.Interfaces {
					if ce.Interfaces[k].Bus == bus {
						ce.Interfaces[k].ExploitRate = rate * f
					}
				}
			})
			if err != nil {
				return nil, fmt.Errorf("core: sensitivity of %s/%s exploit rate: %w", name, bus, err)
			}
			out = append(out, SensitivityResult{
				Component: name, Param: "exploit:" + bus, Rate: rate, Elasticity: el,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].Elasticity) > math.Abs(out[j].Elasticity)
	})
	return out, nil
}
