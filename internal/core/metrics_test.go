package core

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/transform"
)

func TestMetricsArchitecture1(t *testing.T) {
	an := Analyzer{}
	m, err := an.Metrics(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExploitableTimeFraction <= 0 || m.ExploitableTimeFraction >= 1 {
		t.Fatalf("fraction = %v", m.ExploitableTimeFraction)
	}
	if m.MeanTimeToViolation <= 0 || math.IsInf(m.MeanTimeToViolation, 1) {
		t.Fatalf("MTTV = %v", m.MeanTimeToViolation)
	}
	if m.ViolationFrequency <= 0 {
		t.Fatalf("frequency = %v", m.ViolationFrequency)
	}
	if m.FirstViolationProbability <= 0 || m.FirstViolationProbability > 1 {
		t.Fatalf("first violation = %v", m.FirstViolationProbability)
	}
	// Consistency: fraction from Analyze must match.
	r := analyze(t, Analyzer{SkipSteadyState: true}, arch.Architecture1(),
		transform.Availability, transform.Unencrypted)
	if math.Abs(m.ExploitableTimeFraction-r.TimeFraction) > 1e-12 {
		t.Fatalf("fraction mismatch: %v vs %v", m.ExploitableTimeFraction, r.TimeFraction)
	}
}

// TestMetricsMTTVAnalytic: on Architecture 1 availability, the first
// violation coincides with the first 3G exploit (the violated set is
// entered exactly when any ECU is exploited, and only the 3G NET interface
// can fire first), so MTTV = 1/η_NET and the short-horizon first-violation
// probability matches 1 − e^{−ηT}.
func TestMetricsMTTVAnalytic(t *testing.T) {
	an := Analyzer{}
	m, err := an.Metrics(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / arch.RateTelematics3G
	if math.Abs(m.MeanTimeToViolation-want) > 1e-9 {
		t.Fatalf("MTTV = %v, want %v", m.MeanTimeToViolation, want)
	}
	wantFirst := 1 - math.Exp(-arch.RateTelematics3G*1)
	if math.Abs(m.FirstViolationProbability-wantFirst) > 1e-9 {
		t.Fatalf("first violation = %v, want %v", m.FirstViolationProbability, wantFirst)
	}
}

func TestMetricsInfiniteMTTVWhenUnreachable(t *testing.T) {
	a := arch.Architecture3()
	a.Bus(arch.BusFlexRay).Guardian.ExploitRate = 0
	an := Analyzer{}
	m, err := an.Metrics(a, arch.MessageM, transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.MeanTimeToViolation, 1) {
		t.Fatalf("MTTV = %v, want +Inf", m.MeanTimeToViolation)
	}
	if m.ViolationFrequency != 0 || m.FirstViolationProbability != 0 {
		t.Fatalf("metrics nonzero for unreachable violation: %+v", m)
	}
}

func TestMetricsFrequencyVsFirstProbability(t *testing.T) {
	// The expected number of episodes is at least the probability of one
	// episode (Markov inequality direction).
	an := Analyzer{}
	m, err := an.Metrics(arch.Architecture2(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	if m.ViolationFrequency < m.FirstViolationProbability-1e-9 {
		t.Fatalf("frequency %v < first-violation probability %v",
			m.ViolationFrequency, m.FirstViolationProbability)
	}
}

func TestStatisticalViolationTest(t *testing.T) {
	an := Analyzer{}
	// Numeric answer for A1 availability: P[ever violated within 1y] ≈ 0.85.
	res, err := an.TestViolationProbability(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, 0.5, 99, sim.SPRTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != sim.VerdictAccept {
		t.Fatalf("P ≥ 0.5 should hold (true ≈ 0.85): %v", res.Verdict)
	}
	res, err = an.TestViolationProbability(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, 0.95, 99, sim.SPRTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != sim.VerdictReject {
		t.Fatalf("P ≥ 0.95 should fail (true ≈ 0.85): %v", res.Verdict)
	}
}
