// Package core is the paper's contribution as a library: given an
// automotive architecture and a message stream, it quantifies the security
// of the message in terms of confidentiality, integrity and availability by
// transforming the architecture into a CTMC (internal/transform), model
// checking the exploitable-time reward property (internal/ctmc, Section 3.3
// of the paper), and reporting the percentage of a time horizon during which
// the message is exploitable. It also provides the architecture comparison
// of Figure 5 and the parameter explorations of Figure 6.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/csl"
	"repro/internal/modular"
	"repro/internal/obs"
	"repro/internal/transform"
)

// Analyzer bundles the analysis configuration. The zero value analyses with
// the paper's settings: nmax = 2, a one-year horizon, engine-default
// accuracy.
type Analyzer struct {
	// NMax caps the per-interface exploit count (default 2).
	NMax int
	// Horizon is the property time bound in years (default 1).
	Horizon float64
	// Accuracy is the uniformisation truncation accuracy (0 = engine
	// default).
	Accuracy float64
	// MessagePatchRate optionally enables message-protection re-keying
	// (Eq. 10); the paper's case study leaves it 0.
	MessagePatchRate float64
	// LiteralPatchGuard / LinearPatchRates select the ablation variants
	// documented in DESIGN.md §4.
	LiteralPatchGuard bool
	LinearPatchRates  bool
	// MaxStates bounds exploration (0 = engine default).
	MaxStates int
	// MaxTransitions bounds the explored transition count (0 = engine
	// default). Together with MaxStates it guards long-lived processes
	// against runaway state spaces; violations unwrap to
	// modular.ErrBudgetExceeded.
	MaxTransitions int
	// SkipSteadyState omits the long-run probability (Result.SteadyState
	// reports NaN). Parameter sweeps enable this: they only consume the
	// time-fraction metric and extreme rates make the stationary solve the
	// dominant cost.
	SkipSteadyState bool
	// UseLumping analyses the ordinary-lumping quotient of the CTMC with
	// respect to the violated label — the state-merging optimisation the
	// paper proposes as future work (Sections 4.3 and 5). Results are
	// exact; Result.LumpedStates records the reduced size.
	UseLumping bool
	// IncludeReliability enables the combined security + reliability
	// analysis (paper future work): ECUs with configured failure/repair
	// rates gain hardware-failure state; see transform.Options.
	IncludeReliability bool
	// Parallel runs grid analyses (AnalyzeAll, Compare) concurrently, one
	// worker per CPU. Each combination builds its own model, so results
	// are bitwise identical to the sequential order.
	Parallel bool
}

func (a Analyzer) withDefaults() Analyzer {
	if a.NMax <= 0 {
		a.NMax = 2
	}
	if a.Horizon <= 0 {
		a.Horizon = 1
	}
	return a
}

func (a Analyzer) options(cat transform.Category, prot transform.Protection) transform.Options {
	return transform.Options{
		NMax:               a.NMax,
		Category:           cat,
		Protection:         prot,
		MessagePatchRate:   a.MessagePatchRate,
		LiteralPatchGuard:  a.LiteralPatchGuard,
		LinearPatchRates:   a.LinearPatchRates,
		IncludeReliability: a.IncludeReliability,
	}
}

// TransformOptions returns the transform configuration the analyzer uses
// for one category × protection cell, with defaults applied — the
// model-side half of a content-addressed cache key (its Canonical string
// determines the generated model together with the architecture and
// message).
func (a Analyzer) TransformOptions(cat transform.Category, prot transform.Protection) transform.Options {
	return a.withDefaults().options(cat, prot)
}

// Canonical returns a stable encoding of the solver-side configuration —
// horizon, accuracy, state and transition bounds, steady-state and lumping
// switches — with
// defaults applied. Together with arch.(*Architecture).CanonicalJSON and
// transform.Options.Canonical it content-addresses a full analysis;
// Parallel is excluded because it cannot change results.
func (a Analyzer) Canonical() string {
	a = a.withDefaults()
	return fmt.Sprintf("horizon=%g&acc=%g&maxstates=%d&maxtrans=%d&steady=%t&lump=%t",
		a.Horizon, a.Accuracy, a.MaxStates, a.MaxTransitions, !a.SkipSteadyState, a.UseLumping)
}

// Result is one analysed (architecture, message, category, protection)
// combination.
type Result struct {
	Architecture string
	Message      string
	Category     transform.Category
	Protection   transform.Protection
	// TimeFraction is the expected fraction of the horizon during which the
	// message is exploitable — the paper's headline metric (multiply by 100
	// for the percentages of Figure 5).
	TimeFraction float64
	// SteadyState is the long-run probability of being in a violated state.
	SteadyState float64
	// States and Transitions describe the explored CTMC.
	States      int
	Transitions int
	// LumpedStates is the quotient size when UseLumping is enabled
	// (0 otherwise).
	LumpedStates int
	// BuildTime and CheckTime separate model construction from numerical
	// analysis.
	BuildTime time.Duration
	CheckTime time.Duration
}

// Percent returns the time fraction as a percentage.
func (r *Result) Percent() float64 { return 100 * r.TimeFraction }

// Analyze runs the full pipeline for one category × protection combination.
func (a Analyzer) Analyze(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection) (*Result, error) {
	return a.AnalyzeContext(context.Background(), ar, msgName, cat, prot)
}

// AnalyzeContext is Analyze with span propagation: a "core.analyze" span
// (attributed with architecture, message, category and protection) covering
// the transform, explore and check phases, each of which appears as a child
// span in the trace.
func (a Analyzer) AnalyzeContext(ctx context.Context, ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection) (*Result, error) {
	ctx, sp := obs.Start(ctx, "core.analyze")
	defer sp.End()
	if sp != nil {
		sp.Str("arch", ar.Name)
		sp.Str("message", msgName)
		sp.Str("category", cat.String())
		sp.Str("protection", prot.String())
	}
	p, err := a.PrepareContext(ctx, ar, msgName, cat, prot)
	if err != nil {
		return nil, err
	}
	return a.AnalyzePreparedContext(ctx, p)
}

// Categories lists the paper's three security principles in Figure 5 order.
var Categories = []transform.Category{
	transform.Confidentiality, transform.Integrity, transform.Availability,
}

// Protections lists the paper's three protection variants in Figure 5
// order.
var Protections = []transform.Protection{
	transform.Unencrypted, transform.CMAC128, transform.AES128,
}

// AnalyzeAll analyses every category × protection combination for one
// architecture (one column group of Figure 5).
func (a Analyzer) AnalyzeAll(ar *arch.Architecture, msgName string) ([]*Result, error) {
	return a.AnalyzeAllContext(context.Background(), ar, msgName)
}

// AnalyzeAllContext is AnalyzeAll with span propagation and per-combination
// progress events. Parallel workers emit through the same sinks (sinks are
// required to be concurrency-safe).
func (a Analyzer) AnalyzeAllContext(ctx context.Context, ar *arch.Architecture, msgName string) ([]*Result, error) {
	ctx, sp := obs.Start(ctx, "core.analyze_all")
	defer sp.End()
	sp.Str("arch", ar.Name)
	type combo struct {
		cat  transform.Category
		prot transform.Protection
	}
	var combos []combo
	for _, cat := range Categories {
		for _, prot := range Protections {
			combos = append(combos, combo{cat, prot})
		}
	}
	out := make([]*Result, len(combos))
	var done atomic64
	run := func(i int) error {
		r, err := a.AnalyzeContext(ctx, ar, msgName, combos[i].cat, combos[i].prot)
		if err != nil {
			return err
		}
		out[i] = r
		sp.Progress(done.inc(), int64(len(combos)))
		return nil
	}
	if err := forEach(len(combos), a.Parallel, run); err != nil {
		return nil, err
	}
	return out, nil
}

// atomic64 is a tiny atomic counter for progress accounting across the
// forEach worker pool.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (c *atomic64) inc() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// forEach executes run(0..n-1), concurrently when parallel is set, and
// returns the first error.
func forEach(n int, parallel bool, run func(int) error) error {
	if !parallel || n <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := run(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// AnalyzeMessages analyses every message stream of the architecture for one
// category × protection — the paper's per-stream quantification ("we are
// quantizing the security of all traffic") applied to a fully scheduled
// message set.
func (a Analyzer) AnalyzeMessages(ar *arch.Architecture, cat transform.Category, prot transform.Protection) ([]*Result, error) {
	if len(ar.Messages) == 0 {
		return nil, fmt.Errorf("core: architecture %s has no messages", ar.Name)
	}
	out := make([]*Result, 0, len(ar.Messages))
	for i := range ar.Messages {
		r, err := a.Analyze(ar, ar.Messages[i].Name, cat, prot)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Compare analyses several architectures (the full Figure 5 grid).
func (a Analyzer) Compare(archs []*arch.Architecture, msgName string) ([]*Result, error) {
	return a.CompareContext(context.Background(), archs, msgName)
}

// CompareContext is Compare with context propagation: cancellation aborts
// between (and, through the solver plumbing, within) the per-architecture
// grids.
func (a Analyzer) CompareContext(ctx context.Context, archs []*arch.Architecture, msgName string) ([]*Result, error) {
	var out []*Result
	for _, ar := range archs {
		rs, err := a.AnalyzeAllContext(ctx, ar, msgName)
		if err != nil {
			return nil, err
		}
		out = append(out, rs...)
	}
	return out, nil
}

// CheckProperty model-checks an arbitrary CSL property against the
// transformed model, giving access to every state of each submodule
// ("our framework allows the definition of properties for any submodule",
// Section 1). The model labels violated/secure, exp_<ecu> and exp_bus_<bus>
// are available.
func (a Analyzer) CheckProperty(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection, property string) (csl.Result, error) {
	return a.CheckPropertyContext(context.Background(), ar, msgName, cat, prot, property)
}

// CheckPropertyContext is CheckProperty with span propagation: the build,
// exploration and per-property check all nest under a "core.check_property"
// span.
func (a Analyzer) CheckPropertyContext(ctx context.Context, ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection, property string) (csl.Result, error) {
	ctx, sp := obs.Start(ctx, "core.check_property")
	defer sp.End()
	if sp != nil {
		sp.Str("arch", ar.Name)
		sp.Str("property", property)
	}
	a = a.withDefaults()
	_, bsp := obs.Start(ctx, "transform.build")
	res, err := transform.Build(ar, msgName, a.options(cat, prot))
	bsp.End()
	if err != nil {
		return csl.Result{}, err
	}
	ex, err := res.Model.ExploreContext(ctx, modular.ExploreOpts{MaxStates: a.MaxStates, MaxTransitions: a.MaxTransitions})
	if err != nil {
		return csl.Result{}, err
	}
	p, err := csl.Parse(property, csl.Environment{Model: res.Model})
	if err != nil {
		return csl.Result{}, err
	}
	checker := csl.NewChecker(ex)
	checker.Accuracy = a.Accuracy
	return checker.CheckContext(ctx, p)
}

// SweepParam selects which rate the parameter exploration varies.
type SweepParam int

// Sweepable parameters (Figure 6).
const (
	// SweepPatchRate varies the ECU's patching rate ϕ (Figure 6a).
	SweepPatchRate SweepParam = iota
	// SweepExploitRate varies one interface's exploitation rate η
	// (Figure 6b).
	SweepExploitRate
)

// SweepPoint is one point of a parameter exploration curve.
type SweepPoint struct {
	Rate         float64
	TimeFraction float64
}

// ErrSweepTarget reports a sweep over a nonexistent ECU or interface.
var ErrSweepTarget = errors.New("core: sweep target not found")

// Sweep analyses the message while varying one rate of the named ECU (for
// SweepExploitRate, the interface on busName). Rates must be positive.
// The architecture is cloned per point; the input is never mutated.
func (a Analyzer) Sweep(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection,
	param SweepParam, ecuName, busName string, rates []float64) ([]SweepPoint, error) {
	return a.SweepContext(context.Background(), ar, msgName, cat, prot, param, ecuName, busName, rates)
}

// SweepContext is Sweep with span propagation: a "core.sweep" span with one
// progress event per analysed rate point.
func (a Analyzer) SweepContext(ctx context.Context, ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection,
	param SweepParam, ecuName, busName string, rates []float64) ([]SweepPoint, error) {
	ctx, sp := obs.Start(ctx, "core.sweep")
	defer sp.End()
	if sp != nil {
		sp.Str("arch", ar.Name)
		sp.Str("ecu", ecuName)
		sp.Int("points", int64(len(rates)))
	}
	if ar.ECU(ecuName) == nil {
		return nil, fmt.Errorf("%w: ECU %q", ErrSweepTarget, ecuName)
	}
	a.SkipSteadyState = true
	out := make([]SweepPoint, 0, len(rates))
	for _, rate := range rates {
		if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
			return nil, fmt.Errorf("core: sweep rate must be positive and finite, got %v", rate)
		}
		c := ar.Clone()
		e := c.ECU(ecuName)
		switch param {
		case SweepPatchRate:
			e.PatchRate = rate
		case SweepExploitRate:
			found := false
			for i := range e.Interfaces {
				if e.Interfaces[i].Bus == busName {
					e.Interfaces[i].ExploitRate = rate
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: ECU %q has no interface on %q", ErrSweepTarget, ecuName, busName)
			}
		default:
			return nil, fmt.Errorf("core: unknown sweep parameter %d", param)
		}
		r, err := a.AnalyzeContext(ctx, c, msgName, cat, prot)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at rate %v: %w", rate, err)
		}
		out = append(out, SweepPoint{Rate: rate, TimeFraction: r.TimeFraction})
		sp.Progress(int64(len(out)), int64(len(rates)))
	}
	return out, nil
}

// LogSpace returns n logarithmically spaced values over [lo, hi], the grid
// the paper's Figure 6 uses (0.1 … 8760 per year).
func LogSpace(lo, hi float64, n int) []float64 {
	if n <= 0 || lo <= 0 || hi <= lo {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}

// ThresholdCrossing interpolates (log-linearly in the rate) where a
// monotone sweep crosses the given time-fraction threshold, returning the
// first crossing rate. It returns NaN if the curve never crosses.
func ThresholdCrossing(points []SweepPoint, threshold float64) float64 {
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		fa, fb := a.TimeFraction-threshold, b.TimeFraction-threshold
		if fa == 0 {
			return a.Rate
		}
		if fa*fb < 0 {
			// Interpolate in log(rate).
			la, lb := math.Log(a.Rate), math.Log(b.Rate)
			t := fa / (fa - fb)
			return math.Exp(la + t*(lb-la))
		}
	}
	if len(points) > 0 && points[len(points)-1].TimeFraction == threshold {
		return points[len(points)-1].Rate
	}
	return math.NaN()
}
