package core

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/modular"
	"repro/internal/transform"
)

// AttackPaths returns the k most probable distinct attack paths (over the
// embedded jump chain) from the secure initial state to a violated state,
// via Yen's k-shortest-paths algorithm on −log probabilities. Distinct
// means the state sequences differ; probabilities are non-increasing.
func (a Analyzer) AttackPaths(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection, k int) ([]*AttackPath, error) {
	a = a.withDefaults()
	if k <= 0 {
		k = 1
	}
	res, err := transform.Build(ar, msgName, a.options(cat, prot))
	if err != nil {
		return nil, err
	}
	ex, err := res.Model.Explore(modular.ExploreOpts{MaxStates: a.MaxStates})
	if err != nil {
		return nil, err
	}
	violated, err := ex.LabelMask(transform.LabelViolated)
	if err != nil {
		return nil, err
	}
	g := newPathGraph(ex, violated)
	routes := g.yen(ex.InitIndex(), k)
	if len(routes) == 0 {
		return nil, ErrNoAttackPath
	}
	out := make([]*AttackPath, 0, len(routes))
	for _, route := range routes {
		p := &AttackPath{Probability: math.Exp(-route.dist)}
		for i := 1; i < len(route.nodes); i++ {
			from, to := route.nodes[i-1], route.nodes[i]
			rate := ex.Chain.Rates.At(from, to)
			p.Steps = append(p.Steps, AttackStep{
				Description: describeTransition(res.Model, ex.States[from], ex.States[to]),
				Rate:        rate,
				Probability: rate / ex.Chain.Exit[from],
				State:       res.Model.FormatState(ex.States[to]),
			})
		}
		out = append(out, p)
	}
	return out, nil
}

// pathGraph is the embedded chain as a weighted digraph with all violated
// states collapsed into a virtual sink so that "any violated state" is a
// single target.
type pathGraph struct {
	n    int // real states; sink is node n
	adj  [][]pathEdge
	sink int
}

type pathEdge struct {
	to int
	w  float64
}

type route struct {
	nodes []int // real states only (sink stripped)
	dist  float64
}

func newPathGraph(ex *modular.Explored, violated []bool) *pathGraph {
	n := ex.N()
	g := &pathGraph{n: n, adj: make([][]pathEdge, n+1), sink: n}
	for i := 0; i < n; i++ {
		if violated[i] {
			// Violated states route straight to the sink at no cost; their
			// outgoing edges are irrelevant for attack-path purposes.
			g.adj[i] = []pathEdge{{to: g.sink, w: 0}}
			continue
		}
		exit := ex.Chain.Exit[i]
		if exit == 0 {
			continue
		}
		cols, vals := ex.Chain.Rates.Row(i)
		for k, j := range cols {
			p := vals[k] / exit
			if p > 0 {
				g.adj[i] = append(g.adj[i], pathEdge{to: j, w: -math.Log(p)})
			}
		}
	}
	return g
}

// dijkstra finds the shortest path src → sink avoiding banned edges and
// nodes. Returns nil if unreachable.
func (g *pathGraph) dijkstra(src int, bannedEdge map[[2]int]bool, bannedNode []bool) *route {
	dist := make([]float64, g.n+1)
	prev := make([]int, g.n+1)
	done := make([]bool, g.n+1)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	if bannedNode[src] {
		return nil
	}
	dist[src] = 0
	pq := &pathHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pathItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == g.sink {
			break
		}
		for _, e := range g.adj[u] {
			if bannedNode[e.to] || bannedEdge[[2]int{u, e.to}] {
				continue
			}
			if d := it.dist + e.w; d < dist[e.to] {
				dist[e.to] = d
				prev[e.to] = u
				heap.Push(pq, pathItem{node: e.to, dist: d})
			}
		}
	}
	if math.IsInf(dist[g.sink], 1) {
		return nil
	}
	var nodes []int
	for v := g.sink; v != -1; v = prev[v] {
		nodes = append(nodes, v)
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	return &route{nodes: nodes[:len(nodes)-1], dist: dist[g.sink]} // strip sink
}

// yen enumerates up to k loopless shortest routes src → sink.
func (g *pathGraph) yen(src, k int) []*route {
	noBan := make([]bool, g.n+1)
	first := g.dijkstra(src, map[[2]int]bool{}, noBan)
	if first == nil {
		return nil
	}
	paths := []*route{first}
	var candidates []*route
	seen := map[string]bool{routeKey(first): true}

	for len(paths) < k {
		last := paths[len(paths)-1]
		for spurIdx := 0; spurIdx < len(last.nodes); spurIdx++ {
			spurNode := last.nodes[spurIdx]
			rootNodes := last.nodes[:spurIdx+1]
			bannedEdge := make(map[[2]int]bool)
			for _, p := range paths {
				if len(p.nodes) > spurIdx && equalPrefix(p.nodes, rootNodes) {
					if len(p.nodes) > spurIdx+1 {
						bannedEdge[[2]int{p.nodes[spurIdx], p.nodes[spurIdx+1]}] = true
					} else {
						// Path ends at the spur node: its edge to the sink
						// is the continuation to ban.
						bannedEdge[[2]int{p.nodes[spurIdx], g.sink}] = true
					}
				}
			}
			bannedNode := make([]bool, g.n+1)
			for _, v := range rootNodes[:spurIdx] {
				bannedNode[v] = true
			}
			spur := g.dijkstra(spurNode, bannedEdge, bannedNode)
			if spur == nil {
				continue
			}
			// Root cost.
			var rootDist float64
			for i := 1; i <= spurIdx; i++ {
				rootDist += g.edgeWeight(last.nodes[i-1], last.nodes[i])
			}
			total := &route{
				nodes: append(append([]int{}, rootNodes[:spurIdx]...), spur.nodes...),
				dist:  rootDist + spur.dist,
			}
			key := routeKey(total)
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].dist < candidates[j].dist })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func (g *pathGraph) edgeWeight(u, v int) float64 {
	for _, e := range g.adj[u] {
		if e.to == v {
			return e.w
		}
	}
	return math.Inf(1)
}

func equalPrefix(nodes, prefix []int) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

func routeKey(r *route) string {
	b := make([]byte, 0, 4*len(r.nodes))
	for _, v := range r.nodes {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// CriticalComponent reports whether hardening one component to
// unexploitable completely removes the attack (violation unreachable) and
// the residual exploitable time otherwise.
type CriticalComponent struct {
	Name string
	// Blocks is true when zeroing this component's exploit rates makes the
	// violated states unreachable — a single point the defender can fix.
	Blocks bool
	// ResidualTimeFraction is the exploitable time with the component
	// hardened (0 when Blocks).
	ResidualTimeFraction float64
}

// CriticalComponents evaluates, for every ECU (and FlexRay guardian), the
// effect of making it unexploitable: the "what should we harden first"
// answer, complementary to the elasticity ranking. Sorted by residual
// exposure ascending (most effective hardening first).
func (a Analyzer) CriticalComponents(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection) ([]CriticalComponent, error) {
	a.SkipSteadyState = true
	analyzeHardened := func(mutate func(*arch.Architecture)) (CriticalComponent, error) {
		c := ar.Clone()
		mutate(c)
		r, err := a.Analyze(c, msgName, cat, prot)
		if err != nil {
			return CriticalComponent{}, err
		}
		// Graph reachability of a violated state decides Blocks; no
		// quantitative solve needed.
		res, err := transform.Build(c, msgName, a.withDefaults().options(cat, prot))
		if err != nil {
			return CriticalComponent{}, err
		}
		ex, err := res.Model.Explore(modular.ExploreOpts{MaxStates: a.MaxStates})
		if err != nil {
			return CriticalComponent{}, err
		}
		violated, err := ex.LabelMask(transform.LabelViolated)
		if err != nil {
			return CriticalComponent{}, err
		}
		var targets []int
		for i, v := range violated {
			if v {
				targets = append(targets, i)
			}
		}
		blocks := true
		if len(targets) > 0 {
			blocks = !ex.Chain.Digraph().CanReach(targets)[ex.InitIndex()]
		}
		return CriticalComponent{
			Blocks:               blocks,
			ResidualTimeFraction: r.TimeFraction,
		}, nil
	}
	var out []CriticalComponent
	for i := range ar.ECUs {
		name := ar.ECUs[i].Name
		cc, err := analyzeHardened(func(c *arch.Architecture) {
			e := c.ECU(name)
			for k := range e.Interfaces {
				e.Interfaces[k].ExploitRate = 0
			}
		})
		if err != nil {
			return nil, err
		}
		cc.Name = name
		out = append(out, cc)
	}
	for i := range ar.Buses {
		b := &ar.Buses[i]
		if b.Guardian == nil {
			continue
		}
		name := b.Name
		cc, err := analyzeHardened(func(c *arch.Architecture) {
			c.Bus(name).Guardian.ExploitRate = 0
		})
		if err != nil {
			return nil, err
		}
		cc.Name = "guardian:" + name
		out = append(out, cc)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].ResidualTimeFraction < out[j].ResidualTimeFraction
	})
	return out, nil
}
