package core_test

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/transform"
)

// The complete pipeline of the paper on Architecture 1: exploitable time of
// the park-assist message within one year.
func Example() {
	analyzer := core.Analyzer{NMax: 2, Horizon: 1, SkipSteadyState: true}
	r, err := analyzer.Analyze(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s / %s / %s\n", r.Architecture, r.Category, r.Protection)
	fmt.Printf("states: %d\n", r.States)
	fmt.Printf("exploitable time: %.2f%%\n", r.Percent())
	// Output:
	// Architecture 1 / availability / unencrypted
	// states: 729
	// exploitable time: 4.96%
}

// ExampleAnalyzer_MostProbableAttackPath recovers the paper's Figure-1
// narrative for the FlexRay architecture.
func ExampleAnalyzer_MostProbableAttackPath() {
	analyzer := core.Analyzer{NMax: 2, Horizon: 1}
	path, err := analyzer.MostProbableAttackPath(arch.Architecture3(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range path.Steps {
		fmt.Printf("%d. %s\n", i+1, s.Description)
	}
	// Output:
	// 1. exploit interface 3G_NET (now 1)
	// 2. exploit bus guardian of FR
}

// ExampleAnalyzer_Sweep reproduces one point of the paper's Figure 6.
func ExampleAnalyzer_Sweep() {
	analyzer := core.Analyzer{NMax: 2, Horizon: 1}
	pts, err := analyzer.Sweep(arch.Architecture1(), arch.MessageM,
		transform.Confidentiality, transform.Unencrypted,
		core.SweepPatchRate, arch.Telematics, "", []float64{5.2, 52, 520})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("ϕ=%5.1f -> %.2f%%\n", p.Rate, 100*p.TimeFraction)
	}
	// Output:
	// ϕ=  5.2 -> 33.80%
	// ϕ= 52.0 -> 4.96%
	// ϕ=520.0 -> 0.51%
}
