package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/transform"
)

// UncertaintyResult summarises how the exploitable-time metric responds to
// uncertainty in the component assessment. The paper derives point rates
// from CVSS scores and ASIL levels; both are coarse instruments, so a
// decision based on the point estimate alone is fragile. This analysis
// perturbs every exploit and patch rate independently and reports the
// resulting distribution.
type UncertaintyResult struct {
	// Nominal is the unperturbed exploitable-time fraction.
	Nominal float64
	// Samples is the number of perturbed analyses.
	Samples int
	// Mean and quantiles of the perturbed exploitable-time fraction.
	Mean float64
	P05  float64
	P50  float64
	P95  float64
}

// UncertaintyOptions configures the perturbation study.
type UncertaintyOptions struct {
	// Samples is the number of perturbed architectures (default 50).
	Samples int
	// Spread is the multiplicative log-uniform half-range: each rate is
	// scaled by a factor drawn uniformly in [1/(1+Spread), 1+Spread]
	// (default 0.5, i.e. rates off by up to ±50 %).
	Spread float64
	// Seed makes the study reproducible.
	Seed int64
}

func (o UncertaintyOptions) withDefaults() UncertaintyOptions {
	if o.Samples <= 0 {
		o.Samples = 50
	}
	if o.Spread <= 0 {
		o.Spread = 0.5
	}
	return o
}

// Uncertainty runs the perturbation study for one combination.
func (a Analyzer) Uncertainty(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection, opts UncertaintyOptions) (*UncertaintyResult, error) {
	opts = opts.withDefaults()
	a.SkipSteadyState = true
	nominal, err := a.Analyze(ar, msgName, cat, prot)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	factor := func() float64 {
		// Log-uniform in [1/(1+s), 1+s]: symmetric in the multiplicative
		// sense, matching how rate assessments err.
		lo := math.Log(1 / (1 + opts.Spread))
		hi := math.Log(1 + opts.Spread)
		return math.Exp(lo + rng.Float64()*(hi-lo))
	}
	fractions := make([]float64, 0, opts.Samples)
	for s := 0; s < opts.Samples; s++ {
		c := ar.Clone()
		for i := range c.ECUs {
			e := &c.ECUs[i]
			base, err := e.EffectivePatchRate()
			if err != nil {
				return nil, err
			}
			e.PatchRate = base * factor()
			for k := range e.Interfaces {
				e.Interfaces[k].ExploitRate *= factor()
			}
		}
		for i := range c.Buses {
			if g := c.Buses[i].Guardian; g != nil {
				g.ExploitRate *= factor()
				g.PatchRate *= factor()
			}
		}
		r, err := a.Analyze(c, msgName, cat, prot)
		if err != nil {
			return nil, fmt.Errorf("core: uncertainty sample %d: %w", s, err)
		}
		fractions = append(fractions, r.TimeFraction)
	}
	sort.Float64s(fractions)
	var sum float64
	for _, f := range fractions {
		sum += f
	}
	return &UncertaintyResult{
		Nominal: nominal.TimeFraction,
		Samples: opts.Samples,
		Mean:    sum / float64(opts.Samples),
		P05:     quantile(fractions, 0.05),
		P50:     quantile(fractions, 0.50),
		P95:     quantile(fractions, 0.95),
	}, nil
}

// quantile interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
