package core

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/modular"
	"repro/internal/transform"
)

// ComponentResult quantifies one architecture element's exposure: the
// expected fraction of the horizon during which the ECU (or bus) is
// exploited/exploitable, and the probability it is hit at least once. The
// paper proposes exactly this per-element view ("such an analysis can be
// performed for every element in the architecture", Section 4.2).
type ComponentResult struct {
	Name string
	Kind string // "ecu" or "bus"
	// ExploitedTimeFraction is the expected fraction of the horizon the
	// component is exploited (ECUs) / exploitable (buses).
	ExploitedTimeFraction float64
	// EverExploited is P[component exploited at least once within horizon].
	EverExploited float64
}

// AnalyzeComponents computes the per-component exposure of every ECU and
// bus under the model generated for the given message/category/protection.
func (a Analyzer) AnalyzeComponents(ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection) ([]ComponentResult, error) {
	a = a.withDefaults()
	res, err := transform.Build(ar, msgName, a.options(cat, prot))
	if err != nil {
		return nil, err
	}
	ex, err := res.Model.Explore(modular.ExploreOpts{MaxStates: a.MaxStates})
	if err != nil {
		return nil, err
	}
	var out []ComponentResult
	add := func(label, name, kind string) error {
		mask, err := ex.LabelMask(label)
		if err != nil {
			return err
		}
		frac, err := ex.Chain.ExpectedTimeFraction(ex.InitDistribution(), mask, a.Horizon, a.Accuracy)
		if err != nil {
			return fmt.Errorf("core: component %s: %w", name, err)
		}
		ever, err := ex.Chain.TimeBoundedReachability(ex.InitDistribution(), mask, a.Horizon, a.Accuracy)
		if err != nil {
			return fmt.Errorf("core: component %s: %w", name, err)
		}
		out = append(out, ComponentResult{
			Name:                  name,
			Kind:                  kind,
			ExploitedTimeFraction: frac,
			EverExploited:         ever,
		})
		return nil
	}
	for i := range ar.ECUs {
		if err := add("exp_"+ar.ECUs[i].Name, ar.ECUs[i].Name, "ecu"); err != nil {
			return nil, err
		}
	}
	for i := range ar.Buses {
		if err := add("exp_bus_"+ar.Buses[i].Name, ar.Buses[i].Name, "bus"); err != nil {
			return nil, err
		}
	}
	// Most exposed first: the ranking decision makers act on.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].ExploitedTimeFraction > out[j].ExploitedTimeFraction
	})
	return out, nil
}
