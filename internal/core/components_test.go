package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/transform"
)

func TestAnalyzeComponents(t *testing.T) {
	an := Analyzer{}
	comps, err := an.AnalyzeComponents(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	// 4 ECUs + 3 buses.
	if len(comps) != 7 {
		t.Fatalf("components = %d", len(comps))
	}
	byName := make(map[string]ComponentResult)
	for _, c := range comps {
		byName[c.Name] = c
		if c.ExploitedTimeFraction < 0 || c.ExploitedTimeFraction > 1 {
			t.Fatalf("%s: fraction %v", c.Name, c.ExploitedTimeFraction)
		}
		if c.EverExploited+1e-9 < c.ExploitedTimeFraction {
			t.Fatalf("%s: ever (%v) < fraction (%v)", c.Name, c.EverExploited, c.ExploitedTimeFraction)
		}
	}
	// The internet bus is always exploitable.
	if net := byName[arch.BusInternet]; math.Abs(net.ExploitedTimeFraction-1) > 1e-9 {
		t.Fatalf("internet bus fraction = %v", net.ExploitedTimeFraction)
	}
	// The telematics unit is the entry point: it must be hit more than the
	// deeply nested power steering.
	if byName[arch.Telematics].ExploitedTimeFraction <= byName[arch.PowerSteering].ExploitedTimeFraction {
		t.Fatalf("3G (%v) should exceed PS (%v)",
			byName[arch.Telematics].ExploitedTimeFraction,
			byName[arch.PowerSteering].ExploitedTimeFraction)
	}
	// Sorted by exposure, descending.
	for i := 1; i < len(comps); i++ {
		if comps[i].ExploitedTimeFraction > comps[i-1].ExploitedTimeFraction {
			t.Fatal("components not sorted by exposure")
		}
	}
}

func TestMostProbableAttackPathArch1(t *testing.T) {
	an := Analyzer{}
	path, err := an.MostProbableAttackPath(arch.Architecture1(), arch.MessageM,
		transform.Confidentiality, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Steps) == 0 {
		t.Fatal("empty path")
	}
	// The first step must be the internet entry (the only enabled exploit).
	if !strings.Contains(path.Steps[0].Description, "3G_NET") {
		t.Fatalf("first step = %q, want the 3G internet exploit", path.Steps[0].Description)
	}
	if path.Probability <= 0 || path.Probability > 1 {
		t.Fatalf("path probability = %v", path.Probability)
	}
	// Rendering includes every step.
	s := path.String()
	if !strings.Contains(s, "1.") || !strings.Contains(s, "path probability") {
		t.Fatalf("render: %q", s)
	}
}

func TestMostProbableAttackPathFlexRayNeedsGuardian(t *testing.T) {
	an := Analyzer{}
	path, err := an.MostProbableAttackPath(arch.Architecture3(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range path.Steps {
		if strings.Contains(s.Description, "bus guardian") {
			found = true
		}
	}
	if !found {
		t.Fatalf("FlexRay attack path misses the bus guardian:\n%s", path)
	}
}

func TestMostProbableAttackPathUnreachable(t *testing.T) {
	a := arch.Architecture3()
	a.Bus(arch.BusFlexRay).Guardian.ExploitRate = 0
	an := Analyzer{}
	if _, err := an.MostProbableAttackPath(a, arch.MessageM,
		transform.Availability, transform.Unencrypted); !errors.Is(err, ErrNoAttackPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestAttackPathProbabilityMatchesSteps(t *testing.T) {
	an := Analyzer{}
	path, err := an.MostProbableAttackPath(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	prod := 1.0
	for _, s := range path.Steps {
		prod *= s.Probability
	}
	if math.Abs(prod-path.Probability) > 1e-12 {
		t.Fatalf("product %v != reported %v", prod, path.Probability)
	}
}
