package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/transform"
)

func analyze(t *testing.T, a Analyzer, ar *arch.Architecture, cat transform.Category, prot transform.Protection) *Result {
	t.Helper()
	r, err := a.Analyze(ar, arch.MessageM, cat, prot)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyzeBasics(t *testing.T) {
	r := analyze(t, Analyzer{}, arch.Architecture1(), transform.Availability, transform.Unencrypted)
	if r.TimeFraction <= 0 || r.TimeFraction >= 1 {
		t.Fatalf("time fraction = %v", r.TimeFraction)
	}
	if r.States <= 1 || r.Transitions == 0 {
		t.Fatalf("states=%d transitions=%d", r.States, r.Transitions)
	}
	if math.IsNaN(r.SteadyState) || r.SteadyState <= 0 {
		t.Fatalf("steady state = %v", r.SteadyState)
	}
	if r.Percent() != 100*r.TimeFraction {
		t.Fatal("Percent inconsistent")
	}
}

func TestAnalyzeUnknownMessage(t *testing.T) {
	if _, err := (Analyzer{}).Analyze(arch.Architecture1(), "nope", transform.Availability, transform.Unencrypted); !errors.Is(err, transform.ErrUnknownMessage) {
		t.Fatalf("err = %v", err)
	}
}

func TestSkipSteadyState(t *testing.T) {
	a := Analyzer{SkipSteadyState: true}
	r := analyze(t, a, arch.Architecture1(), transform.Availability, transform.Unencrypted)
	if !math.IsNaN(r.SteadyState) {
		t.Fatalf("steady state computed despite skip: %v", r.SteadyState)
	}
}

// TestFigure5Shape asserts the qualitative claims of the paper's Figure 5
// (the acceptance criteria of DESIGN.md §6).
func TestFigure5Shape(t *testing.T) {
	an := Analyzer{SkipSteadyState: true}
	archs := arch.CaseStudy()
	get := func(ai int, cat transform.Category, prot transform.Protection) float64 {
		return analyze(t, an, archs[ai], cat, prot).TimeFraction
	}
	// Availability: protection-independent, A3 ≪ A2 ≤ A1.
	a1 := get(0, transform.Availability, transform.Unencrypted)
	a2 := get(1, transform.Availability, transform.Unencrypted)
	a3 := get(2, transform.Availability, transform.Unencrypted)
	if !(a3 < a2 && a2 < a1) {
		t.Fatalf("availability ordering violated: A1=%v A2=%v A3=%v", a1, a2, a3)
	}
	if a3 > a1/10 {
		t.Fatalf("FlexRay should be dramatically better: A1=%v A3=%v", a1, a3)
	}
	for _, prot := range []transform.Protection{transform.CMAC128, transform.AES128} {
		if v := get(0, transform.Availability, prot); math.Abs(v-a1) > 1e-12 {
			t.Fatalf("availability depends on protection %v: %v vs %v", prot, v, a1)
		}
	}
	// Confidentiality: CMAC must not help, AES must help.
	cu := get(0, transform.Confidentiality, transform.Unencrypted)
	cc := get(0, transform.Confidentiality, transform.CMAC128)
	ca := get(0, transform.Confidentiality, transform.AES128)
	if math.Abs(cu-cc) > 1e-12 {
		t.Fatalf("CMAC changed confidentiality: %v vs %v", cu, cc)
	}
	if !(ca < cu) {
		t.Fatalf("AES did not improve confidentiality: %v vs %v", ca, cu)
	}
	// ... but only modestly (the paper's counter-intuitive finding: the PA
	// compromise bypasses the crypto, so AES gives < 4x, not orders of
	// magnitude).
	if cu/ca > 4 {
		t.Fatalf("AES improvement implausibly large: %vx", cu/ca)
	}
	// Integrity: CMAC and AES both help, equally.
	iu := get(0, transform.Integrity, transform.Unencrypted)
	ic := get(0, transform.Integrity, transform.CMAC128)
	ia := get(0, transform.Integrity, transform.AES128)
	if !(ic < iu) || math.Abs(ic-ia) > 1e-12 {
		t.Fatalf("integrity protections wrong: unenc=%v cmac=%v aes=%v", iu, ic, ia)
	}
	// Unencrypted confidentiality coincides with availability on these
	// topologies (endpoint compromise implies bus exposure), as in the
	// paper's Figure 5 where both read 12.2% for Architecture 1.
	if math.Abs(cu-a1) > 1e-12 {
		t.Fatalf("unencrypted confidentiality %v != availability %v", cu, a1)
	}
}

func TestAnalyzeAllAndCompare(t *testing.T) {
	an := Analyzer{SkipSteadyState: true}
	rs, err := an.AnalyzeAll(arch.Architecture1(), arch.MessageM)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 9 {
		t.Fatalf("AnalyzeAll returned %d results", len(rs))
	}
	all, err := an.Compare(arch.CaseStudy(), arch.MessageM)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 27 {
		t.Fatalf("Compare returned %d results", len(all))
	}
}

func TestHorizonScaling(t *testing.T) {
	// A longer horizon approaches the steady state from below for this
	// model (violated mass accumulates over time from a secure start).
	short := analyze(t, Analyzer{Horizon: 0.1, SkipSteadyState: true}, arch.Architecture1(), transform.Availability, transform.Unencrypted)
	long := analyze(t, Analyzer{Horizon: 5, SkipSteadyState: true}, arch.Architecture1(), transform.Availability, transform.Unencrypted)
	if !(short.TimeFraction < long.TimeFraction) {
		t.Fatalf("time fraction not increasing with horizon: %v vs %v", short.TimeFraction, long.TimeFraction)
	}
}

func TestCheckProperty(t *testing.T) {
	an := Analyzer{}
	res, err := an.CheckProperty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted,
		`P=? [ F<=1 "violated" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value <= 0 || res.Value > 1 {
		t.Fatalf("P = %v", res.Value)
	}
	// The reward property must match Analyze's time fraction.
	rew, err := an.CheckProperty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted,
		`R{"violated_time"}=? [ C<=1 ]`)
	if err != nil {
		t.Fatal(err)
	}
	direct := analyze(t, Analyzer{SkipSteadyState: true}, arch.Architecture1(), transform.Availability, transform.Unencrypted)
	if math.Abs(rew.Value-direct.TimeFraction) > 1e-9 {
		t.Fatalf("CSL reward %v != analyzer %v", rew.Value, direct.TimeFraction)
	}
}

func TestCheckPropertyParseError(t *testing.T) {
	an := Analyzer{}
	if _, err := an.CheckProperty(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, `P=? [ F "nolabel" ]`); err == nil {
		t.Fatal("bad property accepted")
	}
}

func TestSweepPatchRateMonotone(t *testing.T) {
	an := Analyzer{}
	rates := LogSpace(0.5, 500, 7)
	pts, err := an.Sweep(arch.Architecture1(), arch.MessageM,
		transform.Confidentiality, transform.Unencrypted,
		SweepPatchRate, arch.Telematics, "", rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TimeFraction > pts[i-1].TimeFraction {
			t.Fatalf("patch sweep not decreasing at %v: %v -> %v",
				pts[i].Rate, pts[i-1].TimeFraction, pts[i].TimeFraction)
		}
	}
}

func TestSweepExploitRateMonotone(t *testing.T) {
	an := Analyzer{}
	rates := LogSpace(0.5, 500, 7)
	pts, err := an.Sweep(arch.Architecture1(), arch.MessageM,
		transform.Confidentiality, transform.Unencrypted,
		SweepExploitRate, arch.Telematics, arch.BusInternet, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TimeFraction < pts[i-1].TimeFraction {
			t.Fatalf("exploit sweep not increasing at %v", pts[i].Rate)
		}
	}
	// Saturation: the curve must stay below 1.
	if last := pts[len(pts)-1].TimeFraction; last >= 1 {
		t.Fatalf("time fraction %v out of range", last)
	}
}

func TestSweepDoesNotMutateInput(t *testing.T) {
	an := Analyzer{}
	a := arch.Architecture1()
	before := a.ECU(arch.Telematics).PatchRate
	_, err := an.Sweep(a, arch.MessageM, transform.Availability, transform.Unencrypted,
		SweepPatchRate, arch.Telematics, "", []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.ECU(arch.Telematics).PatchRate != before {
		t.Fatal("sweep mutated the input architecture")
	}
}

func TestSweepErrors(t *testing.T) {
	an := Analyzer{}
	if _, err := an.Sweep(arch.Architecture1(), arch.MessageM, transform.Availability, transform.Unencrypted,
		SweepPatchRate, "nope", "", []float64{1}); !errors.Is(err, ErrSweepTarget) {
		t.Fatalf("err = %v", err)
	}
	if _, err := an.Sweep(arch.Architecture1(), arch.MessageM, transform.Availability, transform.Unencrypted,
		SweepExploitRate, arch.Telematics, "nobus", []float64{1}); !errors.Is(err, ErrSweepTarget) {
		t.Fatalf("err = %v", err)
	}
	if _, err := an.Sweep(arch.Architecture1(), arch.MessageM, transform.Availability, transform.Unencrypted,
		SweepPatchRate, arch.Telematics, "", []float64{-1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestLogSpace(t *testing.T) {
	pts := LogSpace(0.1, 1000, 5)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	if math.Abs(pts[0]-0.1) > 1e-12 || math.Abs(pts[4]-1000) > 1e-9 {
		t.Fatalf("endpoints: %v", pts)
	}
	// Constant ratio.
	r := pts[1] / pts[0]
	for i := 2; i < len(pts); i++ {
		if math.Abs(pts[i]/pts[i-1]-r) > 1e-9 {
			t.Fatalf("not log-spaced: %v", pts)
		}
	}
	if LogSpace(-1, 10, 3) != nil || LogSpace(1, 1, 3) != nil || LogSpace(1, 10, 0) != nil {
		t.Fatal("invalid input accepted")
	}
	if one := LogSpace(2, 10, 1); len(one) != 1 || one[0] != 2 {
		t.Fatalf("n=1: %v", one)
	}
}

func TestThresholdCrossing(t *testing.T) {
	pts := []SweepPoint{
		{Rate: 1, TimeFraction: 0.10},
		{Rate: 10, TimeFraction: 0.01},
		{Rate: 100, TimeFraction: 0.001},
	}
	x := ThresholdCrossing(pts, 0.005)
	if !(x > 10 && x < 100) {
		t.Fatalf("crossing = %v", x)
	}
	if !math.IsNaN(ThresholdCrossing(pts, 0.5)) {
		t.Fatal("no-crossing should be NaN")
	}
	if got := ThresholdCrossing(pts, 0.10); got != 1 {
		t.Fatalf("exact hit = %v", got)
	}
}

func TestLumpingPreservesResults(t *testing.T) {
	plain := Analyzer{SkipSteadyState: true}
	lumped := Analyzer{SkipSteadyState: true, UseLumping: true}
	for _, a := range arch.CaseStudy() {
		for _, cat := range Categories {
			rp := analyze(t, plain, a, cat, transform.AES128)
			rl := analyze(t, lumped, a, cat, transform.AES128)
			if math.Abs(rp.TimeFraction-rl.TimeFraction) > 1e-9 {
				t.Fatalf("%s/%s: plain %v vs lumped %v", a.Name, cat, rp.TimeFraction, rl.TimeFraction)
			}
			if rl.LumpedStates <= 0 || rl.LumpedStates > rl.States {
				t.Fatalf("lumped states = %d of %d", rl.LumpedStates, rl.States)
			}
			if rp.LumpedStates != 0 {
				t.Fatalf("plain result reports lumped states %d", rp.LumpedStates)
			}
		}
	}
}

func TestLumpingReducesStateCount(t *testing.T) {
	lumped := Analyzer{SkipSteadyState: true, UseLumping: true}
	r := analyze(t, lumped, arch.Architecture1(), transform.Availability, transform.Unencrypted)
	if r.LumpedStates >= r.States {
		t.Fatalf("no reduction: %d of %d", r.LumpedStates, r.States)
	}
	t.Logf("lumping: %d -> %d states", r.States, r.LumpedStates)
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := Analyzer{SkipSteadyState: true}
	par := Analyzer{SkipSteadyState: true, Parallel: true}
	rs, err := seq.AnalyzeAll(arch.Architecture1(), arch.MessageM)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.AnalyzeAll(arch.Architecture1(), arch.MessageM)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(rp) {
		t.Fatalf("lengths differ: %d vs %d", len(rs), len(rp))
	}
	for i := range rs {
		if rs[i].Category != rp[i].Category || rs[i].Protection != rp[i].Protection {
			t.Fatalf("ordering differs at %d", i)
		}
		if rs[i].TimeFraction != rp[i].TimeFraction {
			t.Fatalf("values differ at %d: %v vs %v", i, rs[i].TimeFraction, rp[i].TimeFraction)
		}
	}
}

func TestParallelPropagatesError(t *testing.T) {
	par := Analyzer{Parallel: true, MaxStates: 5}
	if _, err := par.AnalyzeAll(arch.Architecture1(), arch.MessageM); err == nil {
		t.Fatal("state limit not propagated from parallel workers")
	}
}
