package core

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/transform"
)

func TestTimeSeriesMonotoneQuantities(t *testing.T) {
	an := Analyzer{}
	times := []float64{0.25, 0.5, 1, 2, 5}
	pts, err := an.TimeSeries(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, times)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(times) {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.ViolatedProbability < 0 || p.ViolatedProbability > 1 {
			t.Fatalf("instantaneous out of range: %+v", p)
		}
		if p.EverViolated+1e-9 < p.ViolatedProbability {
			t.Fatalf("ever < instantaneous at %v", p.T)
		}
		if p.EverViolated+1e-9 < p.CumulativeFraction {
			t.Fatalf("ever < cumulative fraction at %v", p.T)
		}
		if i > 0 && pts[i].EverViolated < pts[i-1].EverViolated-1e-9 {
			t.Fatalf("first-violation probability decreased at %v", p.T)
		}
	}
	// Long-horizon cumulative fraction approaches the instantaneous level
	// (steady behaviour), both nonzero.
	last := pts[len(pts)-1]
	if last.CumulativeFraction <= 0 {
		t.Fatalf("no accumulation: %+v", last)
	}
}

func TestTimeSeriesValidation(t *testing.T) {
	an := Analyzer{}
	if _, err := an.TimeSeries(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, nil); err == nil {
		t.Fatal("empty times accepted")
	}
	if _, err := an.TimeSeries(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, []float64{2, 1}); err == nil {
		t.Fatal("unsorted times accepted")
	}
	if _, err := an.TimeSeries(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, []float64{0, 1}); err == nil {
		t.Fatal("zero time accepted")
	}
}

func TestSensitivities(t *testing.T) {
	an := Analyzer{NMax: 1} // keep it fast: 2 analyses per parameter
	sens, err := an.Sensitivities(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	// 4 patch rates + 6 interfaces.
	if len(sens) != 10 {
		t.Fatalf("results = %d", len(sens))
	}
	byKey := make(map[string]SensitivityResult)
	for i, s := range sens {
		byKey[s.Component+"/"+s.Param] = s
		if i > 0 && math.Abs(s.Elasticity) > math.Abs(sens[i-1].Elasticity)+1e-12 {
			t.Fatal("not sorted by |elasticity|")
		}
	}
	// Signs: raising the telematics patch rate reduces exposure; raising
	// its internet exploit rate increases it.
	if s := byKey["3G/patch"]; s.Elasticity >= 0 {
		t.Fatalf("3G patch elasticity = %v, want negative", s.Elasticity)
	}
	if s := byKey["3G/exploit:NET"]; s.Elasticity <= 0 {
		t.Fatalf("3G NET exploit elasticity = %v, want positive", s.Elasticity)
	}
	// The entry point must matter more than the power steering.
	if math.Abs(byKey["3G/exploit:NET"].Elasticity) < math.Abs(byKey["PS/exploit:CAN2"].Elasticity) {
		t.Fatal("entry point less influential than leaf ECU")
	}
}

func TestReliabilityThroughAnalyzer(t *testing.T) {
	a := arch.Architecture1()
	for i := range a.ECUs {
		a.ECUs[i].FailureRate = 0.5
		a.ECUs[i].RepairRate = 12
	}
	plain := Analyzer{SkipSteadyState: true}
	rel := Analyzer{SkipSteadyState: true, IncludeReliability: true}
	rp := analyze(t, plain, a, transform.Availability, transform.Unencrypted)
	rr := analyze(t, rel, a, transform.Availability, transform.Unencrypted)
	if rr.States <= rp.States {
		t.Fatalf("reliability did not grow the model: %d vs %d", rr.States, rp.States)
	}
	if rr.TimeFraction <= rp.TimeFraction {
		t.Fatalf("reliability did not increase availability exposure: %v vs %v",
			rr.TimeFraction, rp.TimeFraction)
	}
}

func TestAnalyzeMessages(t *testing.T) {
	// Two message streams: the park-assist stream plus a diagnostics stream
	// from the gateway to the telematics unit on CAN1.
	a := arch.Architecture1()
	a.Messages = append(a.Messages, arch.Message{
		Name:      "diag",
		Sender:    arch.Gateway,
		Receivers: []string{arch.Telematics},
		Buses:     []string{arch.BusCAN1},
	})
	an := Analyzer{SkipSteadyState: true}
	rs, err := an.AnalyzeMessages(a, transform.Confidentiality, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Message != arch.MessageM || rs[1].Message != "diag" {
		t.Fatalf("messages = %q, %q", rs[0].Message, rs[1].Message)
	}
	// m is routed over a superset of diag's buses (CAN1+CAN2 vs CAN1), so
	// its unencrypted exposure must dominate; both must be positive.
	if rs[0].TimeFraction < rs[1].TimeFraction || rs[1].TimeFraction <= 0 {
		t.Fatalf("m (%v) should dominate diag (%v)", rs[0].TimeFraction, rs[1].TimeFraction)
	}
	// Empty message list errors.
	b := arch.Architecture1()
	b.Messages = nil
	if _, err := an.AnalyzeMessages(b, transform.Availability, transform.Unencrypted); err == nil {
		t.Fatal("no-message architecture accepted")
	}
}
