package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/arch"
	"repro/internal/linalg"
	"repro/internal/modular"
	"repro/internal/obs"
	"repro/internal/transform"
)

// Prepared is the reusable prefix of one analysis: the transformed model,
// its explored state space, and the violated-label artefacts the solvers
// consume. Preparation (transform + exploration) dominates the cost of
// small-horizon queries, and the result depends only on the architecture,
// the message and the model-side Options — not on horizon or accuracy — so
// a resident service can cache Prepared values by content address and
// re-solve the same chain under many solver settings.
//
// A Prepared value is immutable after PrepareContext returns and safe for
// concurrent AnalyzePreparedContext calls.
type Prepared struct {
	// Transform carries the generated model and its variable references
	// (property checks parse against Transform.Model).
	Transform *transform.Result
	// Explored is the compiled state space.
	Explored *modular.Explored

	archName  string
	message   string
	mask      []bool
	init      linalg.Vector
	buildTime time.Duration
}

// States returns the explored state count.
func (p *Prepared) States() int { return p.Explored.N() }

// Transitions returns the explored transition count.
func (p *Prepared) Transitions() int { return p.Explored.Chain.Rates.NNZ() }

// BuildTime returns the wall time of the transform + exploration phase.
func (p *Prepared) BuildTime() time.Duration { return p.buildTime }

// PrepareContext runs the model-construction half of AnalyzeContext —
// transform, exploration, label mask and initial distribution — and returns
// it in a form that AnalyzePreparedContext can solve repeatedly. Only the
// model-side Analyzer options (NMax, patch-guard flags, reliability) affect
// the result; they are captured in Transform.Options.
func (a Analyzer) PrepareContext(ctx context.Context, ar *arch.Architecture, msgName string, cat transform.Category, prot transform.Protection) (*Prepared, error) {
	a = a.withDefaults()
	start := time.Now()
	_, tsp := obs.Start(ctx, "transform.build")
	res, err := transform.Build(ar, msgName, a.options(cat, prot))
	tsp.End()
	if err != nil {
		return nil, err
	}
	ex, err := res.Model.ExploreContext(ctx, modular.ExploreOpts{MaxStates: a.MaxStates, MaxTransitions: a.MaxTransitions})
	if err != nil {
		return nil, err
	}
	mask, err := ex.LabelMask(transform.LabelViolated)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Transform: res,
		Explored:  ex,
		archName:  ar.Name,
		message:   msgName,
		mask:      mask,
		init:      ex.InitDistribution(),
		buildTime: time.Since(start),
	}, nil
}

// AnalyzePreparedContext runs the numerical half of AnalyzeContext on a
// prepared model: the exploitable-time reward, optionally the steady-state
// probability, under the solver-side options of a (Horizon, Accuracy,
// SkipSteadyState, UseLumping). The model-side options must match those
// used at Prepare time; callers that key a cache by Options.Canonical get
// this by construction. Result.BuildTime reports the original preparation
// cost, so cached re-solves surface it unchanged.
func (a Analyzer) AnalyzePreparedContext(ctx context.Context, p *Prepared) (*Result, error) {
	a = a.withDefaults()
	opts := p.Transform.Options
	start := time.Now()
	chain, mask, init := p.Explored.Chain, p.mask, p.init
	lumpedStates := 0
	if a.UseLumping {
		sig := make([]int, len(mask))
		for i, m := range mask {
			if m {
				sig[i] = 1
			}
		}
		l, err := chain.Lump(sig)
		if err != nil {
			return nil, fmt.Errorf("core: lumping: %w", err)
		}
		lmask, err := l.LumpMask(mask)
		if err != nil {
			return nil, fmt.Errorf("core: lumping: %w", err)
		}
		linit, err := l.LumpDistribution(init)
		if err != nil {
			return nil, fmt.Errorf("core: lumping: %w", err)
		}
		chain, mask, init = l.Quotient, lmask, linit
		lumpedStates = l.Quotient.N()
	}
	frac, err := chain.ExpectedTimeFractionContext(ctx, init, mask, a.Horizon, a.Accuracy)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%s/%s: %w", p.archName, opts.Category, opts.Protection, err)
	}
	steady := math.NaN()
	if !a.SkipSteadyState {
		steady, err = chain.SteadyStateProbabilityContext(ctx, init, mask)
		if err != nil {
			return nil, fmt.Errorf("core: steady state: %w", err)
		}
	}
	return &Result{
		Architecture: p.archName,
		Message:      p.message,
		Category:     opts.Category,
		Protection:   opts.Protection,
		TimeFraction: frac,
		SteadyState:  steady,
		States:       p.States(),
		Transitions:  p.Transitions(),
		LumpedStates: lumpedStates,
		BuildTime:    p.buildTime,
		CheckTime:    time.Since(start),
	}, nil
}
