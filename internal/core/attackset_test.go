package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/transform"
)

func TestAttackPathsTopK(t *testing.T) {
	an := Analyzer{}
	paths, err := an.AttackPaths(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// Probabilities non-increasing.
	for i := 1; i < len(paths); i++ {
		if paths[i].Probability > paths[i-1].Probability+1e-12 {
			t.Fatalf("path %d more probable than %d: %v > %v",
				i, i-1, paths[i].Probability, paths[i-1].Probability)
		}
	}
	// The best path agrees with MostProbableAttackPath.
	best, err := an.MostProbableAttackPath(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(paths[0].Probability-best.Probability) > 1e-12 {
		t.Fatalf("top-1 %v != single best %v", paths[0].Probability, best.Probability)
	}
	// Paths must be pairwise distinct.
	seen := map[string]bool{}
	for _, p := range paths {
		key := ""
		for _, s := range p.Steps {
			key += s.State + "|"
		}
		if seen[key] {
			t.Fatal("duplicate path returned")
		}
		seen[key] = true
	}
}

func TestAttackPathsSinglePath(t *testing.T) {
	// Architecture 1 availability has exactly one 1-step path class at the
	// top (3G NET exploit reaches a violated state immediately). Asking for
	// many paths still returns distinct ones.
	an := Analyzer{NMax: 1}
	paths, err := an.AttackPaths(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 1 || len(paths[0].Steps) != 1 {
		t.Fatalf("top path should be the single 3G exploit, got %+v", paths[0])
	}
}

func TestAttackPathsUnreachable(t *testing.T) {
	a := arch.Architecture3()
	a.Bus(arch.BusFlexRay).Guardian.ExploitRate = 0
	an := Analyzer{}
	if _, err := an.AttackPaths(a, arch.MessageM,
		transform.Availability, transform.Unencrypted, 3); !errors.Is(err, ErrNoAttackPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestCriticalComponentsArch3(t *testing.T) {
	an := Analyzer{NMax: 1}
	ccs, err := an.CriticalComponents(arch.Architecture3(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CriticalComponent{}
	for _, c := range ccs {
		byName[c.Name] = c
	}
	// Hardening the bus guardian blocks the entire FlexRay attack.
	if !byName["guardian:FR"].Blocks {
		t.Fatalf("guardian hardening should block: %+v", byName["guardian:FR"])
	}
	// Hardening the telematics unit blocks too (it is the only entry).
	if !byName[arch.Telematics].Blocks {
		t.Fatalf("telematics hardening should block: %+v", byName[arch.Telematics])
	}
	// Hardening the power steering alone cannot block the attack.
	if byName[arch.PowerSteering].Blocks {
		t.Fatal("PS hardening cannot block the attack")
	}
	// Sorted ascending by residual exposure.
	for i := 1; i < len(ccs); i++ {
		if ccs[i].ResidualTimeFraction < ccs[i-1].ResidualTimeFraction-1e-15 {
			t.Fatal("not sorted by residual exposure")
		}
	}
}

func TestCriticalComponentsResidualConsistency(t *testing.T) {
	an := Analyzer{NMax: 1}
	base, err := an.Analyze(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	ccs, err := an.CriticalComponents(arch.Architecture1(), arch.MessageM,
		transform.Availability, transform.Unencrypted)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ccs {
		if c.ResidualTimeFraction > base.TimeFraction+1e-12 {
			t.Fatalf("hardening %s increased exposure: %v > %v",
				c.Name, c.ResidualTimeFraction, base.TimeFraction)
		}
		if c.Blocks && c.ResidualTimeFraction != 0 {
			t.Fatalf("%s blocks but residual %v", c.Name, c.ResidualTimeFraction)
		}
	}
}
